//! Composable DRAM bank-service timing backends.
//!
//! The paper's core model is deliberately cycle-abstract: a bank access
//! costs a flat `bank_latency` and the interesting behaviour is
//! structural (queues, crossbars, bandwidth). ROADMAP open item #2 asks
//! for a Ramulator-2.1-style split so bank service becomes a swappable
//! *timing model* instead of a hard-coded latency. This module is that
//! seam: the [`TimingModel`] trait captures every point where the vault
//! execute stage consults bank timing, and [`TimingEngine`] statically
//! dispatches over the three shipped backends:
//!
//! * [`FixedLatency`] — the paper's model. Every access occupies the
//!   bank for exactly `bank_latency` cycles regardless of row locality;
//!   the per-config row-hit/row-miss knobs are inert. Bit-identical to
//!   the pre-trait engine for every pinned fingerprint.
//! * [`RowBuffer`] — the open/closed-page model from [`crate::dram`]
//!   promoted to a first-class backend: hits cost
//!   `bank_latency + row_hit`, misses `bank_latency + row_miss`, and a
//!   staggered refresh window (tRFC) additionally *closes* the open row
//!   of the bank it refreshed.
//! * [`Validated`] — the accuracy-validation mode motivated by the
//!   Ramulator 2.0 re-evaluation study: a primary [`FixedLatency`]
//!   model drives every simulation decision (so all determinism
//!   contracts keep holding), while a shadow [`RowBuffer`] bank array
//!   is served with the same access stream and the per-access
//!   completion-time divergence is recorded into a histogram surfaced
//!   through telemetry.
//!
//! ## Contracts
//!
//! * **Determinism** — a backend's bank-state evolution is a pure
//!   function of the access stream; [`TimingModel::plan_serve`] and
//!   [`TimingModel::serve`] advance a bank identically, which is what
//!   lets the parallel engine's plan stage predict execution on virtual
//!   bank copies and the take stage replay it on the live banks.
//! * **Horizon** — [`TimingModel::next_event_cycle`] returns the
//!   earliest cycle (strictly after `cycle`) at which any bank the
//!   backend tracks changes availability. The event-horizon engine
//!   never skips past it, so idle-cycle compression stays conservative
//!   for every backend (see DESIGN.md §18).
//! * **Observation only** — the latency-class histograms and the
//!   validated divergence metrics live outside the fingerprint: they
//!   ride through snapshots (so checkpoints round-trip byte-exactly)
//!   but never influence simulation state.

mod fixed;
mod row_buffer;
mod validated;

pub use fixed::FixedLatency;
pub use row_buffer::RowBuffer;
pub use validated::Validated;

use crate::config::DeviceConfig;
use crate::dram::Bank;
use crate::hist::Hist;
use hmc_types::HmcError;

/// Which bank-service timing backend a simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimingSelect {
    /// Flat `bank_latency` per access (the paper's model; the default).
    #[default]
    FixedLatency,
    /// Open/closed-page row-buffer timing with refresh-closed rows.
    RowBuffer,
    /// `FixedLatency` primary plus a shadow `RowBuffer` run in
    /// lockstep, reporting per-access divergence through telemetry.
    Validated,
}

/// Environment variable consulted by [`TimingSelect::resolve_env`]; set
/// to `fixed`, `row_buffer` or `validated` to opt unconfigured
/// simulations into a non-default timing backend.
pub const TIMING_ENV: &str = "HMCSIM_TIMING";

impl TimingSelect {
    /// The stable lowercase name used in JSON codecs, env values and
    /// telemetry paths.
    pub fn name(self) -> &'static str {
        match self {
            TimingSelect::FixedLatency => "fixed",
            TimingSelect::RowBuffer => "row_buffer",
            TimingSelect::Validated => "validated",
        }
    }

    /// Parses a backend name (the inverse of [`TimingSelect::name`],
    /// plus a few forgiving aliases). Unknown names are rejected loudly
    /// with the full list of accepted values.
    pub fn from_name(raw: &str) -> Result<Self, HmcError> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "fixed" | "fixed_latency" | "fixed-latency" => Ok(TimingSelect::FixedLatency),
            "row_buffer" | "row-buffer" | "rowbuffer" | "row" => Ok(TimingSelect::RowBuffer),
            "validated" => Ok(TimingSelect::Validated),
            other => Err(HmcError::MalformedPacket(format!(
                "unknown timing backend {other:?} (expected fixed, row_buffer or validated)"
            ))),
        }
    }

    /// Parses an explicit `HMCSIM_TIMING` value. Anything but a known
    /// backend name — including an empty string — is rejected with a
    /// descriptive error naming the variable: a typo in a CI matrix
    /// must fail the job, not quietly run the wrong model.
    pub fn parse_env_value(raw: &str) -> Result<Self, HmcError> {
        Self::from_name(raw).map_err(|e| {
            HmcError::MalformedPacket(format!("{TIMING_ENV}: {e}"))
        })
    }

    /// Resolves the effective backend, letting the `HMCSIM_TIMING`
    /// environment variable upgrade an unconfigured
    /// ([`TimingSelect::FixedLatency`]) selection — mirroring
    /// [`crate::ExecMode::resolve_env`], this is how the CI timing
    /// matrix drives the whole test suite through each backend without
    /// touching call sites. An explicit non-default setting always
    /// wins; an invalid value is an error — see
    /// [`TimingSelect::parse_env_value`].
    pub fn resolve_env(self) -> Result<Self, HmcError> {
        match self {
            TimingSelect::FixedLatency => match std::env::var(TIMING_ENV) {
                Ok(raw) => Self::parse_env_value(&raw),
                Err(_) => Ok(TimingSelect::FixedLatency),
            },
            explicit => Ok(explicit),
        }
    }
}

/// Per-backend observation counters: latency-class histograms for
/// every served access, plus the validated mode's divergence record.
/// Fingerprint-blind — these are exported through telemetry and carried
/// through snapshots, but the simulation never reads them back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimingStats {
    /// Service latencies of accesses that hit the open row (under
    /// [`FixedLatency`] every access with an open-row match counts
    /// here even though the latency is flat).
    pub hit_latency: Hist,
    /// Service latencies of accesses that opened (or re-opened) a row.
    pub miss_latency: Hist,
    /// `|shadow completion − primary completion|` per access
    /// ([`Validated`] only).
    pub divergence: Hist,
    /// Accesses whose shadow model finished later than the primary.
    pub shadow_late: u64,
    /// Accesses whose shadow model finished earlier than the primary.
    pub shadow_early: u64,
    /// Accesses where both models finished on the same cycle.
    pub shadow_agree: u64,
}

impl TimingStats {
    /// Records one served access into the latency-class histograms.
    #[inline]
    pub(crate) fn record_access(&mut self, hit: bool, latency: u64) {
        if hit {
            self.hit_latency.record(latency);
        } else {
            self.miss_latency.record(latency);
        }
    }

    /// Records one primary/shadow completion pair ([`Validated`]).
    #[inline]
    pub(crate) fn record_divergence(&mut self, primary_end: u64, shadow_end: u64) {
        self.divergence.record(primary_end.abs_diff(shadow_end));
        if shadow_end > primary_end {
            self.shadow_late += 1;
        } else if shadow_end < primary_end {
            self.shadow_early += 1;
        } else {
            self.shadow_agree += 1;
        }
    }
}

/// Everything a timing backend serializes through the snapshot codecs:
/// which backend was running, its observation counters and (for
/// [`Validated`]) the shadow bank array. Excluded from
/// [`crate::snapshot::SimSnapshot::fingerprint`] — restoring it makes a
/// resumed run's *telemetry* continue seamlessly, while the simulation
/// state proper is already covered by the fingerprinted fields.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimingSnapshot {
    /// Backend selection at snapshot time (adopted on restore so a
    /// resumed run replays under the model that produced it).
    pub select: TimingSelect,
    /// Observation counters.
    pub stats: TimingStats,
    /// Shadow bank array, one per global bank (empty unless
    /// [`TimingSelect::Validated`]).
    pub shadow: Vec<Bank>,
}

/// The seam between the vault execute stage and bank timing. One
/// implementation per backend; [`TimingEngine`] statically dispatches.
pub trait TimingModel {
    /// Which backend this is.
    fn select(&self) -> TimingSelect;

    /// Advances `bank` for one access exactly as [`TimingModel::serve`]
    /// would, without recording any observation — the pure variant the
    /// parallel plan stage applies to its virtual bank copies.
    fn plan_serve(&self, bank: &mut Bank, cycle: u64, row: u64, global_bank: u64);

    /// Serves one access on the live `bank` at `cycle`: advances the
    /// bank (busy window, row state, hit/miss counters), records the
    /// latency class, and feeds the shadow model if there is one.
    /// Returns the service latency in cycles.
    fn serve(&mut self, bank: &mut Bank, cycle: u64, row: u64, global_bank: u64) -> u64;

    /// The earliest cycle strictly after `cycle` at which any bank this
    /// backend tracks changes availability, or `None` when every
    /// tracked bank is already settled. The event-horizon engine never
    /// skips past this cycle, which keeps idle-cycle compression
    /// conservative for every backend.
    fn next_event_cycle(
        &self,
        banks: &mut dyn Iterator<Item = &Bank>,
        cycle: u64,
    ) -> Option<u64>;

    /// The observation counters.
    fn stats(&self) -> &TimingStats;
}

/// The earliest `busy_until` strictly after `cycle` across `banks` —
/// the shared live-bank part of every backend's horizon.
pub(crate) fn banks_horizon(
    banks: &mut dyn Iterator<Item = &Bank>,
    cycle: u64,
) -> Option<u64> {
    banks
        .map(|b| b.busy_horizon())
        .filter(|&t| t > cycle)
        .min()
}

/// Static dispatch over the shipped backends, stored per device.
#[derive(Debug, Clone)]
pub(crate) enum TimingEngine {
    Fixed(FixedLatency),
    Row(RowBuffer),
    Validated(Box<Validated>),
}

impl TimingEngine {
    /// Builds the engine for `select` against a validated device
    /// configuration.
    pub(crate) fn new(select: TimingSelect, config: &DeviceConfig) -> Self {
        match select {
            TimingSelect::FixedLatency => TimingEngine::Fixed(FixedLatency::new(config)),
            TimingSelect::RowBuffer => TimingEngine::Row(RowBuffer::new(config)),
            TimingSelect::Validated => TimingEngine::Validated(Box::new(Validated::new(config))),
        }
    }

    /// Rebuilds an engine from checkpointed state, adopting the
    /// snapshot's backend selection so a resumed run continues under
    /// the model that produced it.
    pub(crate) fn from_snapshot(snap: &TimingSnapshot, config: &DeviceConfig) -> Self {
        let mut engine = Self::new(snap.select, config);
        match &mut engine {
            TimingEngine::Fixed(m) => m.stats = snap.stats,
            TimingEngine::Row(m) => m.stats = snap.stats,
            TimingEngine::Validated(m) => {
                m.stats = snap.stats;
                if snap.shadow.len() == m.shadow.len() {
                    m.shadow = snap.shadow.clone();
                }
            }
        }
        engine
    }

    /// Deep-copies the engine's serializable state.
    pub(crate) fn snapshot(&self) -> TimingSnapshot {
        TimingSnapshot {
            select: self.model().select(),
            stats: *self.model().stats(),
            shadow: match self {
                TimingEngine::Validated(m) => m.shadow.clone(),
                _ => Vec::new(),
            },
        }
    }

    #[inline]
    fn model(&self) -> &dyn TimingModel {
        match self {
            TimingEngine::Fixed(m) => m,
            TimingEngine::Row(m) => m,
            TimingEngine::Validated(m) => m.as_ref(),
        }
    }

    #[inline]
    pub(crate) fn select(&self) -> TimingSelect {
        self.model().select()
    }

    #[inline]
    pub(crate) fn stats(&self) -> &TimingStats {
        self.model().stats()
    }

    #[inline]
    pub(crate) fn plan_serve(&self, bank: &mut Bank, cycle: u64, row: u64, global_bank: u64) {
        match self {
            TimingEngine::Fixed(m) => m.plan_serve(bank, cycle, row, global_bank),
            TimingEngine::Row(m) => m.plan_serve(bank, cycle, row, global_bank),
            TimingEngine::Validated(m) => m.plan_serve(bank, cycle, row, global_bank),
        }
    }

    #[inline]
    pub(crate) fn serve(
        &mut self,
        bank: &mut Bank,
        cycle: u64,
        row: u64,
        global_bank: u64,
    ) -> u64 {
        match self {
            TimingEngine::Fixed(m) => m.serve(bank, cycle, row, global_bank),
            TimingEngine::Row(m) => m.serve(bank, cycle, row, global_bank),
            TimingEngine::Validated(m) => m.serve(bank, cycle, row, global_bank),
        }
    }

    #[inline]
    pub(crate) fn next_event_cycle(
        &self,
        banks: &mut dyn Iterator<Item = &Bank>,
        cycle: u64,
    ) -> Option<u64> {
        self.model().next_event_cycle(banks, cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::{BankTiming, RefreshConfig, RowPolicy};

    fn config() -> DeviceConfig {
        let mut c = DeviceConfig::gen2_4link_4gb();
        c.bank_latency = 2;
        c.bank_timing = BankTiming { row_hit: 1, row_miss: 6, policy: RowPolicy::OpenPage };
        c
    }

    #[test]
    fn names_round_trip_and_unknowns_reject_loudly() {
        for select in
            [TimingSelect::FixedLatency, TimingSelect::RowBuffer, TimingSelect::Validated]
        {
            assert_eq!(TimingSelect::from_name(select.name()).unwrap(), select);
        }
        for alias in ["FIXED", " fixed_latency ", "fixed-latency"] {
            assert_eq!(TimingSelect::from_name(alias).unwrap(), TimingSelect::FixedLatency);
        }
        for alias in ["row", "ROW-BUFFER", "rowbuffer"] {
            assert_eq!(TimingSelect::from_name(alias).unwrap(), TimingSelect::RowBuffer);
        }
        for bad in ["", "warp_drive", "2", "rowbufer"] {
            let msg = TimingSelect::from_name(bad).unwrap_err().to_string();
            assert!(msg.contains("unknown timing backend"), "{msg}");
            let msg = TimingSelect::parse_env_value(bad).unwrap_err().to_string();
            assert!(msg.contains(TIMING_ENV), "error names the variable: {msg}");
        }
    }

    #[test]
    fn explicit_selection_is_never_downgraded_by_env() {
        assert_eq!(TimingSelect::default(), TimingSelect::FixedLatency);
        assert_eq!(
            TimingSelect::RowBuffer.resolve_env().unwrap(),
            TimingSelect::RowBuffer
        );
        assert_eq!(
            TimingSelect::Validated.resolve_env().unwrap(),
            TimingSelect::Validated
        );
    }

    #[test]
    fn fixed_latency_flattens_row_knobs() {
        let mut engine = TimingEngine::new(TimingSelect::FixedLatency, &config());
        let mut bank = Bank::default();
        // Miss then hit: both cost exactly bank_latency.
        assert_eq!(engine.serve(&mut bank, 0, 5, 0), 2);
        assert_eq!(engine.serve(&mut bank, 2, 5, 0), 2);
        assert_eq!(engine.stats().hit_latency.count(), 1);
        assert_eq!(engine.stats().miss_latency.count(), 1);
        assert_eq!(bank.row_hits, 1);
        assert_eq!(bank.row_misses, 1);
    }

    #[test]
    fn row_buffer_honours_hit_and_miss_latencies() {
        let mut engine = TimingEngine::new(TimingSelect::RowBuffer, &config());
        let mut bank = Bank::default();
        assert_eq!(engine.serve(&mut bank, 0, 5, 0), 8, "miss: bank_latency + row_miss");
        assert_eq!(engine.serve(&mut bank, 8, 5, 0), 3, "hit: bank_latency + row_hit");
        assert_eq!(engine.serve(&mut bank, 11, 6, 0), 8, "row change misses");
    }

    #[test]
    fn row_buffer_refresh_closes_the_open_row() {
        let mut c = config();
        c.refresh = Some(RefreshConfig { interval: 100, duration: 10 });
        let mut engine = TimingEngine::new(TimingSelect::RowBuffer, &c);
        let mut bank = Bank::default();
        // Bank 0's refresh windows start at 0, 100, 200, ... Open row 5
        // after the first window, then access it again after cycle 100:
        // the second window closed the row, so the access misses.
        assert_eq!(engine.serve(&mut bank, 20, 5, 0), 8, "first access misses");
        assert_eq!(engine.serve(&mut bank, 50, 5, 0), 3, "row still open: hit");
        assert_eq!(engine.serve(&mut bank, 120, 5, 0), 8, "refresh closed the row");
        // A bank whose offset window has not yet recurred keeps its row.
        let mut far_bank = Bank::default();
        let total = (c.total_vaults() * c.banks_per_vault) as u64;
        engine.serve(&mut far_bank, 20, 5, total - 1);
        assert_eq!(engine.serve(&mut far_bank, 50, 5, total - 1), 3, "no window crossed: hit");
    }

    #[test]
    fn plan_serve_matches_serve_exactly() {
        for select in
            [TimingSelect::FixedLatency, TimingSelect::RowBuffer, TimingSelect::Validated]
        {
            let mut c = config();
            c.refresh = Some(RefreshConfig { interval: 64, duration: 4 });
            let mut engine = TimingEngine::new(select, &c);
            let mut live = Bank::default();
            let mut planned = Bank::default();
            let mut cycle = 5;
            for row in [1u64, 1, 2, 1, 7, 7, 1] {
                engine.plan_serve(&mut planned, cycle, row, 3);
                engine.serve(&mut live, cycle, row, 3);
                assert_eq!(
                    format!("{live:?}"),
                    format!("{planned:?}"),
                    "{select:?}: plan and serve must advance banks identically"
                );
                cycle += 16;
            }
        }
    }

    #[test]
    fn validated_drives_with_fixed_and_records_divergence() {
        let mut engine = TimingEngine::new(TimingSelect::Validated, &config());
        let mut primary_twin = TimingEngine::new(TimingSelect::FixedLatency, &config());
        let mut bank = Bank::default();
        let mut twin = Bank::default();
        let mut cycle = 0;
        for row in [4u64, 4, 9, 4] {
            assert_eq!(
                engine.serve(&mut bank, cycle, row, 0),
                primary_twin.serve(&mut twin, cycle, row, 0),
                "validated primary must be bit-identical to FixedLatency"
            );
            assert_eq!(format!("{bank:?}"), format!("{twin:?}"));
            cycle += 10;
        }
        let s = engine.stats();
        assert_eq!(s.divergence.count(), 4, "one divergence sample per access");
        assert_eq!(s.shadow_late + s.shadow_early + s.shadow_agree, 4);
        assert!(s.divergence.max() > 0, "row-miss shadow must diverge from flat latency");
    }

    #[test]
    fn horizon_covers_busy_banks_and_validated_shadow() {
        let mut engine = TimingEngine::new(TimingSelect::Validated, &config());
        let mut bank = Bank::default();
        engine.serve(&mut bank, 10, 5, 0);
        let banks = [bank];
        // Primary busy until 12, shadow until 18 (miss: 2 + 6 extra).
        let h = engine
            .next_event_cycle(&mut banks.iter(), 10)
            .expect("busy banks imply a horizon");
        assert_eq!(h, 12, "earliest event is the primary bank release");
        let h = engine.next_event_cycle(&mut banks.iter(), 13).expect("shadow still busy");
        assert_eq!(h, 18, "shadow release is a horizon event too");
        assert_eq!(engine.next_event_cycle(&mut banks.iter(), 18), None);
    }

    #[test]
    fn snapshot_round_trips_every_backend() {
        for select in
            [TimingSelect::FixedLatency, TimingSelect::RowBuffer, TimingSelect::Validated]
        {
            let c = config();
            let mut engine = TimingEngine::new(select, &c);
            let mut bank = Bank::default();
            let mut cycle = 0;
            for row in [1u64, 2, 2, 3] {
                engine.serve(&mut bank, cycle, row, 7);
                cycle += 20;
            }
            let snap = engine.snapshot();
            assert_eq!(snap.select, select);
            let restored = TimingEngine::from_snapshot(&snap, &c);
            assert_eq!(snap, restored.snapshot(), "snapshot must round-trip");
        }
    }
}
