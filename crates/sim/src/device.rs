//! The single-cube device model.
//!
//! A [`Device`] mirrors the Gen2 hardware structure HMC-Sim models:
//! per-link crossbar request/response queues, 32 vaults each with a
//! bounded request queue and response queue fronting its DRAM banks,
//! the backing memory, the CMC registration table, the register file
//! and the statistics/power accounting.
//!
//! The clock advances in four stages per cycle, executed in reverse
//! pipeline order so a packet moves through at most one stage per
//! cycle:
//!
//! 1. vault response queues → crossbar response queues
//! 2. crossbar response queues → host delivery (handled by the
//!    simulation context, same cycle as stage 1 — the response path
//!    costs one cycle end-to-end)
//! 3. vault execution (the `hmcsim_process_rqst` equivalent)
//! 4. crossbar request queues → vault request queues
//!
//! giving an uncontended request a three-cycle round trip.

use crate::addr::AddressMap;
use crate::config::{DeviceConfig, SpecRevision};
use crate::dram::Bank;
use crate::fault::{FaultRng, ERRSTAT_VAULT_FAULT};
use crate::timing::{TimingEngine, TimingSelect, TimingStats};
use crate::power::{PowerConfig, PowerModel};
use crate::queue::BoundedQueue;
use crate::regs::RegisterFile;
use crate::stats::DeviceStats;
use crate::trace::{CmdRef, TraceKind, TraceLane, TraceLevel, TraceRecord, Tracer};
use hmc_cmc::{CmcContext, CmcRegistry};
use hmc_mem::SparseMemory;
use hmc_types::packet::payload_words;
use hmc_types::rsp::HmcResponse;
use hmc_types::{CmdKind, Cub, HmcError, HmcRqst, PayloadBuf, Request, Response, RspHead, RspTail, Slid};
use std::sync::Arc;

/// A request in flight inside the simulator, carrying the host-side
/// bookkeeping the C implementation keeps in its packet envelopes.
#[derive(Debug, Clone)]
pub struct TrackedRequest {
    /// The wire packet.
    pub req: Request,
    /// The device index the host injected the packet into.
    pub entry_device: usize,
    /// The link the packet entered on.
    pub entry_link: usize,
    /// Simulation cycle at injection.
    pub issue_cycle: u64,
    /// Chained-device hops traversed so far.
    pub hops: u32,
    /// Earliest cycle the vault may execute this request (set by the
    /// crossbar when the target quad is remote to the entry link).
    pub ready_cycle: u64,
    /// Cycle the crossbar handed the request to its vault queue
    /// (lifecycle span stamp; written unconditionally so telemetry
    /// state never influences simulation state).
    pub vault_enq_cycle: u64,
}

/// A response in flight, annotated with completion data.
#[derive(Debug, Clone)]
pub struct TrackedResponse {
    /// The wire packet.
    pub rsp: Response,
    /// Cycle the originating request was injected.
    pub issue_cycle: u64,
    /// Cycle the response became visible to the host (set at
    /// delivery).
    pub complete_cycle: u64,
    /// Round-trip latency in cycles (set at delivery).
    pub latency: u64,
    /// The device the originating request entered through.
    pub entry_device: usize,
    /// The link the response must be delivered on.
    pub entry_link: usize,
    /// Command class of the originating request (per-class latency
    /// accounting).
    pub class: crate::stats::CmdClass,
    /// Pipeline-stage timestamps for the lifecycle span (written
    /// unconditionally; only *recorded* into histograms when telemetry
    /// is enabled).
    pub stages: crate::telemetry::StageStamps,
}

/// One vault: request/response queues plus per-bank busy tracking.
#[derive(Debug, Clone)]
pub(crate) struct Vault {
    pub(crate) rqst: BoundedQueue<TrackedRequest>,
    pub(crate) rsp: BoundedQueue<TrackedResponse>,
    pub(crate) banks: Vec<Bank>,
}

impl Vault {
    fn new(config: &DeviceConfig) -> Self {
        Vault {
            rqst: BoundedQueue::new(config.vault_queue_depth),
            rsp: BoundedQueue::new(config.vault_queue_depth),
            banks: (0..config.banks_per_vault).map(|_| Bank::default()).collect(),
        }
    }
}

/// What the request-routing stage asks the simulation context to do
/// with a packet destined for another cube.
#[derive(Debug)]
pub(crate) struct ForwardRequest {
    pub(crate) item: TrackedRequest,
    pub(crate) from_link: usize,
}

/// The result of one request-routing stage.
#[derive(Debug, Default)]
pub(crate) struct RouteOutcome {
    /// Packets destined for other cubes.
    pub(crate) forwards: Vec<ForwardRequest>,
    /// FLITs freed from each link's crossbar input buffer this cycle
    /// (the token-return path).
    pub(crate) freed_flits: Vec<u64>,
}

/// A response leaving the device: either for the local host or for a
/// chained neighbour. Delivery carries the physical egress link,
/// which differs from `entry_link` when link failover re-routed the
/// response through a surviving link.
#[derive(Debug)]
pub(crate) enum Egress {
    Deliver(TrackedResponse, usize),
    Forward(TrackedResponse),
}

/// Why a vault's planned execution window stopped short this cycle.
/// Replayed at commit so stall traces and counters are bit-identical
/// to the sequential path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StallKind {
    /// The head request's bank is blocked by a refresh window.
    Refresh {
        /// Bank index within the vault.
        bank: usize,
    },
    /// The head request's bank is still serving a prior access.
    BankBusy {
        /// Bank index within the vault.
        bank: usize,
    },
    /// The vault response queue has no room for the head's response.
    RspFull,
}

/// The per-vault outcome of the pure planning pass: how many queued
/// requests the vault retires this cycle, their decoded locations, and
/// the stall (if any) that terminated the window. The take stage
/// replays the planned accesses through the timing engine, so bank
/// evolution (and observation recording) happens exactly once, in
/// vault order.
#[derive(Debug)]
pub(crate) struct VaultPlan {
    pub(crate) vault: usize,
    pub(crate) take: usize,
    pub(crate) locs: Vec<crate::addr::Location>,
    pub(crate) stall: Option<StallKind>,
}

/// The work handed to a compute lane for one vault: the popped
/// requests paired with their decoded locations, in queue order.
#[derive(Debug)]
pub(crate) struct VaultWork {
    pub(crate) vault: usize,
    pub(crate) items: Vec<(TrackedRequest, crate::addr::Location)>,
}

/// A single simulated HMC device.
#[derive(Debug)]
pub struct Device {
    id: usize,
    config: DeviceConfig,
    map: AddressMap,
    xbar_rqst: Vec<BoundedQueue<TrackedRequest>>,
    xbar_rsp: Vec<BoundedQueue<TrackedResponse>>,
    vaults: Vec<Vault>,
    /// Behind an `Arc` so parallel vault workers can hold a `'static`
    /// handle during the compute phase; between cycles the device is
    /// the sole owner. `SparseMemory`'s accessors take `&self`.
    mem: Arc<SparseMemory>,
    cmc: CmcRegistry,
    regs: RegisterFile,
    stats: DeviceStats,
    power: PowerModel,
    /// The bank-service timing backend (see [`crate::timing`]).
    timing: TimingEngine,
    /// Seeded PRNG for the fault plan's probabilistic draws.
    fault_rng: FaultRng,
    /// Current link state driven by the fault plan's schedule.
    link_up: Vec<bool>,
    /// Next unapplied index into the fault plan's link schedule.
    fault_idx: usize,
}

impl Device {
    /// Builds a device with the given cube id and configuration, using
    /// the default [`TimingSelect::FixedLatency`] backend.
    pub fn new(id: usize, config: DeviceConfig) -> Result<Self, HmcError> {
        Self::with_timing(id, config, TimingSelect::FixedLatency)
    }

    /// Builds a device with an explicit bank-timing backend.
    pub fn with_timing(
        id: usize,
        config: DeviceConfig,
        select: TimingSelect,
    ) -> Result<Self, HmcError> {
        config.validate()?;
        let timing = TimingEngine::new(select, &config);
        Ok(Device {
            id,
            map: AddressMap::new(&config),
            xbar_rqst: (0..config.links)
                .map(|_| BoundedQueue::new(config.xbar_queue_depth))
                .collect(),
            xbar_rsp: (0..config.links)
                .map(|_| BoundedQueue::new(config.xbar_queue_depth))
                .collect(),
            vaults: (0..config.total_vaults()).map(|_| Vault::new(&config)).collect(),
            mem: Arc::new(SparseMemory::new(config.capacity)),
            cmc: CmcRegistry::new(),
            regs: RegisterFile::new(config.capacity, config.links),
            stats: DeviceStats::default(),
            power: PowerModel::new(PowerConfig::default()),
            timing,
            fault_rng: FaultRng::new(config.fault.seed.wrapping_add(id as u64)),
            link_up: vec![true; config.links],
            fault_idx: 0,
            config,
        })
    }

    /// The cube id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The address map.
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// Read-only statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// The accumulated power model.
    pub fn power(&self) -> &PowerModel {
        &self.power
    }

    /// The active bank-timing backend.
    pub fn timing_select(&self) -> TimingSelect {
        self.timing.select()
    }

    /// The timing backend's observation counters (latency-class
    /// histograms, validated-mode divergence).
    pub fn timing_stats(&self) -> &TimingStats {
        self.timing.stats()
    }

    /// Swaps the bank-timing backend, resetting its observation
    /// counters and (for [`TimingSelect::Validated`]) its shadow bank
    /// array. Bank state proper is untouched.
    pub fn set_timing_model(&mut self, select: TimingSelect) {
        self.timing = TimingEngine::new(select, &self.config);
    }

    /// The CMC registration table.
    pub fn cmc(&self) -> &CmcRegistry {
        &self.cmc
    }

    /// Mutable CMC registration table (used by `hmc_load_cmc`).
    pub fn cmc_mut(&mut self) -> &mut CmcRegistry {
        &mut self.cmc
    }

    /// The register file (JTAG access path).
    pub fn regs(&self) -> &RegisterFile {
        &self.regs
    }

    /// Mutable register file (JTAG write path).
    pub fn regs_mut(&mut self) -> &mut RegisterFile {
        &mut self.regs
    }

    /// Host backdoor: direct memory read (simulation setup /
    /// verification, like HMC-Sim's direct memory initialization).
    pub fn mem(&self) -> &SparseMemory {
        &self.mem
    }

    /// Host backdoor: direct memory write. The store's mutation
    /// methods take `&self` (interior mutability), but the backdoor
    /// keeps requiring `&mut Device` so setup writes cannot race a
    /// parallel compute phase.
    pub fn mem_mut(&mut self) -> &SparseMemory {
        &self.mem
    }

    /// A shared handle to the backing store for parallel vault workers.
    pub(crate) fn mem_arc(&self) -> Arc<SparseMemory> {
        Arc::clone(&self.mem)
    }

    /// Counts a host-visible send stall (link layer rejected the
    /// packet before it reached the crossbar queue).
    pub(crate) fn count_send_stall(&mut self) {
        self.stats.send_stalls += 1;
    }

    /// True when `link` is currently operational (not taken down by
    /// the fault plan's schedule).
    pub fn link_is_up(&self, link: usize) -> bool {
        self.link_up.get(link).copied().unwrap_or(false)
    }

    /// The fault plan's PRNG (transmission-error draws happen at the
    /// context layer where the link machinery lives).
    pub(crate) fn fault_rng_mut(&mut self) -> &mut FaultRng {
        &mut self.fault_rng
    }

    /// Counts a response dropped at delivery because the host
    /// abandoned its tag.
    pub(crate) fn count_abandoned(&mut self) {
        self.stats.abandoned_responses += 1;
    }

    /// Applies all fault-plan link events scheduled at or before
    /// `cycle`. Called once at the top of every clock.
    pub(crate) fn apply_fault_schedule(&mut self, cycle: u64, tracer: &mut Tracer) {
        while let Some(ev) = self.config.fault.link_schedule.get(self.fault_idx) {
            if ev.cycle > cycle {
                break;
            }
            if self.link_up[ev.link] != ev.up {
                self.link_up[ev.link] = ev.up;
                let kind = if ev.up { TraceKind::LinkUp } else { TraceKind::LinkDown };
                tracer.emit(TraceRecord {
                    dev: self.id as u16,
                    link: ev.link as u8,
                    ..TraceRecord::new(cycle, kind)
                });
            }
            self.fault_idx += 1;
        }
    }

    /// Cycle of the next not-yet-applied fault-plan link event, if
    /// any. The event-horizon engine may not skip past this cycle —
    /// a scheduled link transition must be applied by the full clock
    /// path on time.
    pub(crate) fn next_fault_event(&self) -> Option<u64> {
        self.config.fault.link_schedule.get(self.fault_idx).map(|ev| ev.cycle)
    }

    /// Earliest cycle strictly after `cycle` at which any bank the
    /// timing backend tracks (live or shadow) changes availability.
    /// The event-horizon engine may not skip past this cycle: a bank
    /// release can unblock a stalled vault queue head.
    pub(crate) fn next_timing_event(&self, cycle: u64) -> Option<u64> {
        self.timing
            .next_event_cycle(&mut self.vaults.iter().flat_map(|v| v.banks.iter()), cycle)
    }

    /// True when `link`'s crossbar request queue can accept a packet.
    pub(crate) fn link_can_accept(&self, link: usize) -> bool {
        link < self.config.links && !self.xbar_rqst[link].is_full()
    }

    /// Injects a packet into a link's crossbar request queue
    /// (`hmc_send_packet`). Returns the packet on stall so the host
    /// can retry.
    #[allow(clippy::result_large_err)] // stalls hand the packet back by value
    pub(crate) fn send(
        &mut self,
        link: usize,
        item: TrackedRequest,
    ) -> Result<(), (TrackedRequest, HmcError)> {
        if link >= self.config.links {
            return Err((item, HmcError::InvalidLink(link)));
        }
        let flits = item.req.flits() as u64;
        match self.xbar_rqst[link].push(item) {
            Ok(()) => {
                self.stats.rqst_flits += flits;
                self.power.add_link_flits(flits);
                Ok(())
            }
            Err((item, e)) => {
                self.stats.send_stalls += 1;
                Err((item, e))
            }
        }
    }

    /// Accepts a packet forwarded from a chained neighbour.
    #[allow(clippy::result_large_err)] // stalls hand the packet back by value
    pub(crate) fn accept_forward(
        &mut self,
        link: usize,
        item: TrackedRequest,
    ) -> Result<(), (TrackedRequest, HmcError)> {
        let link = link % self.config.links;
        self.xbar_rqst[link].push(item)
    }

    /// Accepts a response travelling back toward its entry device.
    #[allow(clippy::result_large_err)] // stalls hand the packet back by value
    pub(crate) fn accept_return(
        &mut self,
        link: usize,
        item: TrackedResponse,
    ) -> Result<(), (TrackedResponse, HmcError)> {
        let link = link % self.config.links;
        self.xbar_rsp[link].push(item)
    }

    /// Stage 1: vault response queues → crossbar response queues.
    /// Responses whose entry link is down fail over to the first
    /// surviving up link.
    pub(crate) fn route_responses(&mut self, cycle: u64, tracer: &mut Tracer) {
        for (v, vault) in self.vaults.iter_mut().enumerate() {
            for _ in 0..self.config.vault_bandwidth {
                let Some(rsp) = vault.rsp.peek() else { break };
                let preferred = rsp.entry_link % self.config.links;
                let link = if self.link_up[preferred] {
                    preferred
                } else {
                    // Crossbar failover: first up link after the
                    // preferred one (wrapping); if every link is down
                    // the response keeps its lane and waits there.
                    (1..self.config.links)
                        .map(|i| (preferred + i) % self.config.links)
                        .find(|&l| self.link_up[l])
                        .unwrap_or(preferred)
                };
                if self.xbar_rsp[link].is_full() {
                    self.stats.vault_stalls += 1;
                    tracer.emit(TraceRecord {
                        dev: self.id as u16,
                        vault: v as u16,
                        link: link as u8,
                        ..TraceRecord::new(cycle, TraceKind::XbarRspFull)
                    });
                    break;
                }
                if link != preferred {
                    self.stats.failover_responses += 1;
                    tracer.emit(TraceRecord {
                        dev: self.id as u16,
                        vault: v as u16,
                        link: link as u8,
                        a: preferred as u64,
                        tag: rsp.rsp.head.tag.value(),
                        ..TraceRecord::new(cycle, TraceKind::Failover)
                    });
                }
                let mut rsp = vault.rsp.pop().expect("peeked");
                rsp.stages.rsp_route = cycle;
                self.xbar_rsp[link]
                    .push(rsp)
                    .unwrap_or_else(|_| unreachable!("checked not full"));
            }
        }
    }

    /// Stage 2: crossbar response queues → egress (host delivery or
    /// chained return). The simulation context completes delivery.
    pub(crate) fn drain_responses(&mut self, cycle: u64) -> Vec<Egress> {
        let mut out = Vec::new();
        for link in 0..self.config.links {
            if !self.link_up[link] {
                // A downed link transmits nothing; queued responses
                // wait for link-up (or for failover of new traffic).
                continue;
            }
            for _ in 0..self.config.link_bandwidth {
                let Some(mut rsp) = self.xbar_rsp[link].pop() else { break };
                rsp.stages.egress = cycle;
                let flits = rsp.rsp.flits() as u64;
                if rsp.entry_device == self.id {
                    self.stats.rsp_flits += flits;
                    self.power.add_link_flits(flits);
                    out.push(Egress::Deliver(rsp, link));
                } else {
                    out.push(Egress::Forward(rsp));
                }
            }
        }
        out
    }

    /// Stage 3: vault execution — the `hmcsim_process_rqst`
    /// equivalent. Returns the number of requests retired *without* a
    /// response (posted writes, flow packets, posted vault faults) —
    /// the sanitizer's "absorbed" tally for packet conservation.
    pub(crate) fn execute_vaults(&mut self, cycle: u64, tracer: &mut Tracer) -> u64 {
        let mut absorbed = 0u64;
        let Device {
            id,
            config,
            map,
            vaults,
            mem,
            cmc,
            regs,
            stats,
            power,
            timing,
            fault_rng,
            ..
        } = self;
        for (vidx, vault) in vaults.iter_mut().enumerate() {
            for _ in 0..config.vault_bandwidth {
                let Some(head) = vault.rqst.peek() else { break };
                if head.ready_cycle > cycle {
                    // Still crossing the quad fabric.
                    break;
                }
                let addr = head.req.head.addr;
                let loc = match map.decompose(addr) {
                    Ok(loc) => loc,
                    Err(_) => {
                        // Out-of-range addresses produce error
                        // responses; fabricate a location for
                        // bookkeeping.
                        crate::addr::Location { quad: 0, vault: vidx as u32, bank: 0, row: 0, offset: 0 }
                    }
                };
                let bank = loc.bank as usize % config.banks_per_vault;
                let global_bank = (vidx * config.banks_per_vault + bank) as u64;
                if let Some(refresh) = &config.refresh {
                    let total = (config.total_vaults() * config.banks_per_vault) as u64;
                    if refresh.blocks(cycle, global_bank, total) {
                        stats.vault_stalls += 1;
                        tracer.emit(TraceRecord {
                            dev: *id as u16,
                            vault: vidx as u16,
                            bank: bank as u16,
                            ..TraceRecord::new(cycle, TraceKind::Refresh)
                        });
                        break;
                    }
                }
                if vault.banks[bank].is_busy(cycle) {
                    stats.vault_stalls += 1;
                    tracer.emit(TraceRecord {
                        dev: *id as u16,
                        vault: vidx as u16,
                        bank: bank as u16,
                        ..TraceRecord::new(cycle, TraceKind::BankBusy)
                    });
                    break;
                }
                let posted = is_posted(&head.req, cmc);
                if !posted && vault.rsp.is_full() {
                    stats.vault_stalls += 1;
                    tracer.emit(TraceRecord {
                        dev: *id as u16,
                        vault: vidx as u16,
                        ..TraceRecord::new(cycle, TraceKind::VaultRspFull)
                    });
                    break;
                }
                let item = vault.rqst.pop().expect("peeked");
                // Injected vault internal error: the controller
                // answers with ERRSTAT before touching DRAM, so the
                // request has no side effects and a host retry is
                // always safe.
                if fault_rng.chance(config.fault.vault_error_per_million) {
                    stats.vault_faults += 1;
                    stats.error_responses += 1;
                    tracer.emit(TraceRecord {
                        dev: *id as u16,
                        vault: vidx as u16,
                        tag: item.req.head.tag.value(),
                        a: ERRSTAT_VAULT_FAULT as u64,
                        ..TraceRecord::new(cycle, TraceKind::VaultFault)
                    });
                    if !posted {
                        stats.responses += 1;
                        vault
                            .rsp
                            .push(tracked_response(
                                error_response(*id, &item, ERRSTAT_VAULT_FAULT),
                                &item,
                                cycle,
                            ))
                            .unwrap_or_else(|_| unreachable!("rsp queue checked above"));
                    } else {
                        absorbed += 1;
                    }
                    continue;
                }
                timing.serve(&mut vault.banks[bank], cycle, loc.row, global_bank);
                power.add_dram_access();
                let rsp = execute_request(
                    *id, config, &item, &loc, mem, cmc, regs, stats, power, cycle, tracer,
                );
                if let Some(mut rsp) = rsp {
                    // Poison: a read response may be delivered with
                    // the data-invalid bit set. Reads are idempotent,
                    // so the host can safely re-issue.
                    if matches!(rsp.head.cmd, HmcResponse::RdRs | HmcResponse::MdRdRs)
                        && fault_rng.chance(config.fault.poison_per_million)
                    {
                        rsp.tail.dinv = true;
                        stats.poisoned_responses += 1;
                        tracer.emit(TraceRecord {
                            dev: *id as u16,
                            vault: vidx as u16,
                            tag: item.req.head.tag.value(),
                            ..TraceRecord::new(cycle, TraceKind::Poison)
                        });
                    }
                    stats.responses += 1;
                    vault
                        .rsp
                        .push(tracked_response(rsp, &item, cycle))
                        .unwrap_or_else(|_| unreachable!("rsp queue checked above"));
                } else {
                    absorbed += 1;
                }
            }
        }
        absorbed
    }

    /// Pure planning pass for the parallel engine: replays the exact
    /// head-of-line decision sequence of [`Device::execute_vaults`]
    /// without mutating anything, deciding per vault how many requests
    /// retire this cycle and which stall (if any) ends the window.
    ///
    /// Returns `None` when the cycle must run on the serial reference
    /// path instead:
    /// - any probabilistic fault injection is enabled (each executed
    ///   request consumes `FaultRng` state, and that stream must be
    ///   drawn in sequential order),
    /// - a mode or CMC command is in the planned window (register
    ///   file and CMC registry are serial device state),
    /// - two planned requests from different vaults touch overlapping
    ///   byte ranges with at least one writer (the compute phase
    ///   would race; the footprint test over-approximates, which is
    ///   safe because `check_range` rejects out-of-bounds accesses
    ///   before any mutation).
    pub(crate) fn plan_vault_stage(&self, cycle: u64) -> Option<Vec<VaultPlan>> {
        if self.config.fault.vault_error_per_million > 0
            || self.config.fault.poison_per_million > 0
        {
            return None;
        }
        let mut plans = Vec::with_capacity(self.vaults.len());
        // (start, end, write, vault) byte-range footprints of every
        // planned request, for the cross-vault conflict sweep.
        let mut footprints: Vec<(u64, u64, bool, usize)> = Vec::new();
        for (vidx, vault) in self.vaults.iter().enumerate() {
            let mut plan = VaultPlan {
                vault: vidx,
                take: 0,
                locs: Vec::new(),
                stall: None,
            };
            // Plan-local advanced bank copies: the window's earlier
            // accesses must be visible to its later busy checks, but
            // live banks stay untouched until take time.
            let mut banks: Vec<(usize, Bank)> = Vec::new();
            // Virtual response-queue occupancy: grows as planned
            // requests promise responses, exactly as the real queue
            // grows during sequential execution.
            let mut virt_rsp = vault.rsp.len();
            for i in 0..self.config.vault_bandwidth {
                let Some(head) = vault.rqst.peek_at(i) else { break };
                if head.ready_cycle > cycle {
                    break;
                }
                let cmd = head.req.head.cmd;
                let kind = cmd.kind();
                if matches!(kind, CmdKind::ModeRead | CmdKind::ModeWrite | CmdKind::Cmc) {
                    return None;
                }
                let loc = match self.map.decompose(head.req.head.addr) {
                    Ok(loc) => loc,
                    Err(_) => crate::addr::Location {
                        quad: 0,
                        vault: vidx as u32,
                        bank: 0,
                        row: 0,
                        offset: 0,
                    },
                };
                let bank = loc.bank as usize % self.config.banks_per_vault;
                let global_bank = (vidx * self.config.banks_per_vault + bank) as u64;
                if let Some(refresh) = &self.config.refresh {
                    let total =
                        (self.config.total_vaults() * self.config.banks_per_vault) as u64;
                    if refresh.blocks(cycle, global_bank, total) {
                        plan.stall = Some(StallKind::Refresh { bank });
                        break;
                    }
                }
                // Check the plan-local bank copy if this window
                // already touched the bank, else the live bank.
                let bank_state = banks
                    .iter()
                    .find(|(b, _)| *b == bank)
                    .map(|(_, s)| s)
                    .unwrap_or(&vault.banks[bank]);
                if bank_state.is_busy(cycle) {
                    plan.stall = Some(StallKind::BankBusy { bank });
                    break;
                }
                let posted = is_posted(&head.req, &self.cmc);
                if !posted && virt_rsp >= vault.rsp.depth() {
                    plan.stall = Some(StallKind::RspFull);
                    break;
                }
                let will_respond = if !self.config.revision.supports(cmd) {
                    !cmd.is_posted()
                } else {
                    !posted && kind != CmdKind::Flow
                };
                if will_respond {
                    virt_rsp += 1;
                }
                if let Some((start, end, write)) = data_footprint(&head.req) {
                    footprints.push((start, end, write, vidx));
                }
                // Advance a copy of the bank exactly as the timing
                // backend will at take time (plan/serve equality is a
                // trait contract, pinned by the timing unit tests).
                let mut state = bank_state.clone();
                self.timing.plan_serve(&mut state, cycle, loc.row, global_bank);
                match banks.iter_mut().find(|(b, _)| *b == bank) {
                    Some(slot) => slot.1 = state,
                    None => banks.push((bank, state)),
                }
                plan.locs.push(loc);
                plan.take += 1;
            }
            plans.push(plan);
        }
        // Cross-vault conflict sweep over the sorted footprints: for
        // each range, scan forward while ranges still start before it
        // ends.
        footprints.sort_unstable();
        for i in 0..footprints.len() {
            let (_, end_i, write_i, vault_i) = footprints[i];
            for &(start_j, _, write_j, vault_j) in &footprints[i + 1..] {
                if start_j >= end_i {
                    break;
                }
                if vault_j != vault_i && (write_i || write_j) {
                    return None;
                }
            }
        }
        Some(plans)
    }

    /// Applies the *take* side of a plan: pops the planned requests,
    /// replays their bank accesses through the timing backend (so live
    /// banks advance — and observations record — exactly as the
    /// sequential path would, in vault order), and books the stall and
    /// DRAM-access accounting the sequential path performs inline.
    /// Must run on the coordinating thread before the compute phase.
    pub(crate) fn take_parallel_work(&mut self, cycle: u64, plans: &[VaultPlan]) -> Vec<VaultWork> {
        let Device { config, vaults, timing, stats, power, .. } = self;
        let mut work = Vec::with_capacity(plans.len());
        for plan in plans {
            let vault = &mut vaults[plan.vault];
            let mut items = Vec::with_capacity(plan.take);
            for loc in &plan.locs {
                let item = vault.rqst.pop().expect("planned item present");
                let bank = loc.bank as usize % config.banks_per_vault;
                let global_bank = (plan.vault * config.banks_per_vault + bank) as u64;
                timing.serve(&mut vault.banks[bank], cycle, loc.row, global_bank);
                power.add_dram_access();
                items.push((item, *loc));
            }
            if plan.stall.is_some() {
                stats.vault_stalls += 1;
            }
            work.push(VaultWork { vault: plan.vault, items });
        }
        work
    }

    /// Commit phase for one device: replays each vault's deferred
    /// trace events, pushes its responses into the vault response
    /// queue (occupancy was reserved by the plan), folds the shard-
    /// local stat/power deltas in, and re-emits the planned stall
    /// events — all in vault-index order, so the observable effect is
    /// bit-identical to [`Device::execute_vaults`]. Returns the
    /// absorbed-request tally for the sanitizer.
    pub(crate) fn commit_parallel_vaults(
        &mut self,
        cycle: u64,
        plans: &[VaultPlan],
        results: Vec<crate::parallel::VaultResult>,
        tracer: &mut Tracer,
    ) -> u64 {
        let mut absorbed = 0u64;
        let mut results = results.into_iter().peekable();
        for plan in plans {
            if results.peek().is_some_and(|r| r.vault == plan.vault) {
                let r = results.next().expect("peeked");
                tracer.replay(&r.events);
                for rsp in r.responses {
                    match rsp {
                        Some(tr) => {
                            self.stats.responses += 1;
                            self.vaults[plan.vault]
                                .rsp
                                .push(tr)
                                .unwrap_or_else(|_| unreachable!("rsp occupancy reserved by plan"));
                        }
                        None => absorbed += 1,
                    }
                }
                self.stats.merge(&r.stats);
                self.power.merge_counts(&r.power);
            }
            let base = |kind| TraceRecord {
                dev: self.id as u16,
                vault: plan.vault as u16,
                ..TraceRecord::new(cycle, kind)
            };
            match plan.stall {
                Some(StallKind::Refresh { bank }) => {
                    tracer.emit(TraceRecord { bank: bank as u16, ..base(TraceKind::Refresh) })
                }
                Some(StallKind::BankBusy { bank }) => {
                    tracer.emit(TraceRecord { bank: bank as u16, ..base(TraceKind::BankBusy) })
                }
                Some(StallKind::RspFull) => tracer.emit(base(TraceKind::VaultRspFull)),
                None => {}
            }
        }
        absorbed
    }

    /// Stage 4: crossbar request queues → vault request queues, or
    /// hand packets for other cubes back to the simulation context.
    pub(crate) fn route_requests(&mut self, cycle: u64, tracer: &mut Tracer) -> RouteOutcome {
        let mut out = RouteOutcome {
            forwards: Vec::new(),
            freed_flits: vec![0; self.config.links],
        };
        // Arbitration: fixed priority serves links in index order;
        // round-robin rotates the first-served link each cycle.
        let start = match self.config.arbitration {
            crate::config::Arbitration::FixedPriority => 0,
            crate::config::Arbitration::RoundRobin => (cycle as usize) % self.config.links,
        };
        for i in 0..self.config.links {
            let link = (start + i) % self.config.links;
            for _ in 0..self.config.link_bandwidth {
                let Some(head) = self.xbar_rqst[link].peek() else { break };
                if head.req.head.cub.value() as usize != self.id {
                    let item = self.xbar_rqst[link].pop().expect("peeked");
                    self.stats.forwarded += 1;
                    out.freed_flits[link] += item.req.flits() as u64;
                    out.forwards.push(ForwardRequest { item, from_link: link });
                    continue;
                }
                let vault = match self.map.decompose(head.req.head.addr) {
                    Ok(loc) => loc.vault as usize,
                    Err(_) => 0, // error surfaces at execution
                };
                if self.vaults[vault].rqst.is_full() {
                    self.stats.xbar_stalls += 1;
                    tracer.emit(TraceRecord {
                        dev: self.id as u16,
                        link: link as u8,
                        vault: vault as u16,
                        ..TraceRecord::new(cycle, TraceKind::VaultRqstFull)
                    });
                    break;
                }
                let mut item = self.xbar_rqst[link].pop().expect("peeked");
                item.vault_enq_cycle = cycle;
                out.freed_flits[link] += item.req.flits() as u64;
                // Quad affinity: link i is local to quad i % quads;
                // requests for other quads pay the crossing penalty.
                if self.config.remote_quad_penalty > 0 {
                    let target_quad = vault / self.config.vaults_per_quad;
                    if target_quad != link % self.config.quads {
                        // Execution normally starts next cycle; the
                        // penalty delays it by that many extra cycles.
                        item.ready_cycle = cycle + 1 + self.config.remote_quad_penalty;
                        self.stats.remote_quad_requests += 1;
                    }
                }
                tracer.emit(TraceRecord {
                    dev: self.id as u16,
                    link: link as u8,
                    vault: vault as u16,
                    a: (self.vaults[vault].rqst.len() + 1) as u64,
                    ..TraceRecord::new(cycle, TraceKind::XbarToVault)
                });
                self.vaults[vault]
                    .rqst
                    .push(item)
                    .unwrap_or_else(|_| unreachable!("checked not full"));
            }
        }
        out
    }

    /// Aggregate row-buffer statistics across all banks:
    /// `(row_hits, row_misses)`.
    pub fn row_buffer_stats(&self) -> (u64, u64) {
        self.vaults
            .iter()
            .flat_map(|v| v.banks.iter())
            .fold((0, 0), |(h, m), b| (h + b.row_hits, m + b.row_misses))
    }

    /// Packets currently resident in any device queue (crossbar or
    /// vault, either direction). Zero means the device is quiescent.
    pub fn pending_work(&self) -> usize {
        self.xbar_rqst.iter().map(|q| q.len()).sum::<usize>()
            + self.xbar_rsp.iter().map(|q| q.len()).sum::<usize>()
            + self
                .vaults
                .iter()
                .map(|v| v.rqst.len() + v.rsp.len())
                .sum::<usize>()
    }

    /// FLITs currently held in one link's crossbar request queue (the
    /// sanitizer's token-conservation check: these FLITs back the
    /// link's outstanding tokens).
    pub(crate) fn xbar_rqst_flits(&self, link: usize) -> u64 {
        self.xbar_rqst
            .get(link)
            .map_or(0, |q| q.iter().map(|i| i.req.flits() as u64).sum())
    }

    /// First queue whose occupancy exceeds its configured depth, if
    /// any (sanitizer bound check; structurally unreachable through
    /// [`BoundedQueue`]'s own API, so a hit means memory corruption or
    /// a restore from a mismatched snapshot).
    pub(crate) fn queue_bound_violation(&self) -> Option<String> {
        for (link, q) in self.xbar_rqst.iter().enumerate() {
            if q.len() > q.depth() {
                return Some(format!("xbar rqst link {link}: {} > depth {}", q.len(), q.depth()));
            }
        }
        for (link, q) in self.xbar_rsp.iter().enumerate() {
            if q.len() > q.depth() {
                return Some(format!("xbar rsp link {link}: {} > depth {}", q.len(), q.depth()));
            }
        }
        for (v, vault) in self.vaults.iter().enumerate() {
            if vault.rqst.len() > vault.rqst.depth() {
                return Some(format!(
                    "vault {v} rqst: {} > depth {}",
                    vault.rqst.len(),
                    vault.rqst.depth()
                ));
            }
            if vault.rsp.len() > vault.rsp.depth() {
                return Some(format!(
                    "vault {v} rsp: {} > depth {}",
                    vault.rsp.len(),
                    vault.rsp.depth()
                ));
            }
        }
        None
    }

    /// Hashes every queue occupancy into `h` (the stall watchdog's
    /// progress fingerprint).
    pub(crate) fn occupancy_signature(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        for q in &self.xbar_rqst {
            q.len().hash(h);
        }
        for q in &self.xbar_rsp {
            q.len().hash(h);
        }
        for v in &self.vaults {
            v.rqst.len().hash(h);
            v.rsp.len().hash(h);
        }
    }

    /// Deep-copies the device's dynamic state into a snapshot.
    pub(crate) fn snapshot_state(&self) -> crate::snapshot::DeviceSnapshot {
        crate::snapshot::DeviceSnapshot {
            xbar_rqst: self.xbar_rqst.clone(),
            xbar_rsp: self.xbar_rsp.clone(),
            vaults: self.vaults.clone(),
            mem: (*self.mem).clone(),
            regs: self.regs.clone(),
            stats: self.stats.clone(),
            power: self.power.clone(),
            fault_rng: self.fault_rng.clone(),
            link_up: self.link_up.clone(),
            fault_idx: self.fault_idx,
            timing: self.timing.snapshot(),
        }
    }

    /// Restores the device's dynamic state from a snapshot (static
    /// parts — configuration, address map, CMC registry — are kept).
    pub(crate) fn restore_state(&mut self, s: &crate::snapshot::DeviceSnapshot) {
        self.xbar_rqst = s.xbar_rqst.clone();
        self.xbar_rsp = s.xbar_rsp.clone();
        self.vaults = s.vaults.clone();
        self.mem = Arc::new(s.mem.clone());
        self.regs = s.regs.clone();
        self.stats = s.stats.clone();
        self.power = s.power.clone();
        self.fault_rng = s.fault_rng.clone();
        self.link_up = s.link_up.clone();
        self.fault_idx = s.fault_idx;
        self.timing = TimingEngine::from_snapshot(&s.timing, &self.config);
    }

    /// Test backdoor: pushes a response directly into a crossbar
    /// response queue, bypassing injection accounting — used to
    /// exercise the sanitizer's phantom-response detection.
    #[doc(hidden)]
    pub fn debug_inject_response(&mut self, link: usize, item: TrackedResponse) {
        let link = link % self.config.links;
        let _ = self.xbar_rsp[link].push(item);
    }

    /// Total crossbar-queue stall count (for diagnostics).
    pub fn xbar_queue_stalls(&self) -> u64 {
        self.xbar_rqst.iter().map(|q| q.stalls()).sum()
    }

    /// Highest vault request-queue occupancy observed.
    pub fn vault_queue_high_water(&self) -> usize {
        self.vaults.iter().map(|v| v.rqst.high_water()).max().unwrap_or(0)
    }

    /// Leakage accounting hook, called once per cycle.
    pub(crate) fn tick_power(&mut self) {
        self.power.add_cycles(1);
    }

    /// Bulk leakage accounting for a skipped idle region of `cycles`
    /// cycles — one closed-form update, exactly `cycles` calls of
    /// [`Device::tick_power`].
    pub(crate) fn tick_power_n(&mut self, cycles: u64) {
        self.power.tick_idle_n(cycles);
    }

    /// Records a completed-request latency under its command class
    /// (delivery happens at the context level, but the counter belongs
    /// to the entry device).
    pub(crate) fn record_latency(&mut self, class: crate::stats::CmdClass, latency: u64) {
        self.stats.record_latency(class, latency);
    }

    /// Total occupancy of all vault request queues (the telemetry
    /// queue-occupancy time series samples this once per window).
    pub fn vault_rqst_occupancy(&self) -> u64 {
        self.vaults.iter().map(|v| v.rqst.len() as u64).sum()
    }

    /// Cumulative requests accepted into vault request queues (queue
    /// throughput for the telemetry registry).
    pub fn vault_rqst_pushes(&self) -> u64 {
        self.vaults.iter().map(|v| v.rqst.pushes()).sum()
    }
}

/// Postedness of a request: fixed for standard commands, registry-
/// defined for CMC commands (unknown CMC commands are treated as
/// non-posted so the host receives the error response).
fn is_posted(req: &Request, cmc: &CmcRegistry) -> bool {
    match req.head.cmd {
        HmcRqst::Cmc(code) => cmc
            .lookup(code)
            .map(|op| op.registration().is_posted())
            .unwrap_or(false),
        cmd => cmd.is_posted(),
    }
}

/// The byte range `[start, end)` a data-path request may touch, plus
/// whether it writes; `None` for footprint-free packets (flow). An
/// over-approximation is safe here: `check_range` rejects
/// out-of-bounds accesses before any mutation, so a request that
/// would fail touches nothing regardless of its nominal range.
fn data_footprint(req: &Request) -> Option<(u64, u64, bool)> {
    let cmd = req.head.cmd;
    let addr = req.head.addr;
    match cmd.kind() {
        CmdKind::Read => {
            let bytes = cmd.fixed_info().map(|i| i.data_bytes as u64).unwrap_or(0);
            Some((addr, addr.saturating_add(bytes), false))
        }
        CmdKind::Write | CmdKind::PostedWrite => {
            Some((addr, addr.saturating_add(req.payload.len() as u64 * 8), true))
        }
        // Every atomic operates on at most 16 bytes at the target
        // address.
        CmdKind::Atomic | CmdKind::PostedAtomic => Some((addr, addr.saturating_add(16), true)),
        CmdKind::Flow | CmdKind::ModeRead | CmdKind::ModeWrite | CmdKind::Cmc => None,
    }
}

/// Builds an error response for a failed request.
fn error_response(dev: usize, item: &TrackedRequest, errstat: u8) -> Response {
    Response {
        head: RspHead {
            cmd: HmcResponse::Error,
            lng: 1,
            tag: item.req.head.tag,
            af: false,
            slid: Slid::new((item.entry_link % 8) as u8).expect("link < 8"),
            cub: Cub::new(dev as u8).expect("contexts hold at most Cub::MAX_CUBES devices"),
        },
        payload: PayloadBuf::new(),
        tail: RspTail { errstat, ..RspTail::default() },
    }
}

/// Builds a success response.
fn make_response(
    dev: usize,
    item: &TrackedRequest,
    cmd: HmcResponse,
    payload: impl Into<PayloadBuf>,
    af: bool,
) -> Response {
    let payload = payload.into();
    let lng = (1 + payload.len() / 2) as u8;
    Response {
        head: RspHead {
            cmd,
            lng,
            tag: item.req.head.tag,
            af,
            slid: Slid::new((item.entry_link % 8) as u8).expect("link < 8"),
            cub: Cub::new(dev as u8).expect("contexts hold at most Cub::MAX_CUBES devices"),
        },
        payload,
        tail: RspTail::default(),
    }
}

/// Wraps a response packet with the in-flight bookkeeping copied from
/// its originating request (the single construction point for stage-3
/// responses, shared by the sequential path and the parallel workers).
pub(crate) fn tracked_response(rsp: Response, item: &TrackedRequest, cycle: u64) -> TrackedResponse {
    TrackedResponse {
        rsp,
        issue_cycle: item.issue_cycle,
        complete_cycle: 0,
        latency: 0,
        entry_device: item.entry_device,
        entry_link: item.entry_link,
        class: crate::stats::CmdClass::of(item.req.head.cmd.kind()),
        stages: crate::telemetry::StageStamps {
            vault_enq: item.vault_enq_cycle,
            exec: cycle,
            ..Default::default()
        },
    }
}

/// Executes one *data-path* request — flow, read, write or atomic —
/// against the backing store. This is the single execution core shared
/// by the sequential reference path and the parallel vault workers:
/// it touches only `mem` (interior-mutable, `&self`) plus the caller's
/// accumulators, so a worker lane can run it with a shard-local
/// `DeviceStats`/`PowerModel`/[`TraceLane::Deferred`] and the commit
/// phase merges the deltas. Mode and CMC commands are *not* handled
/// here (they touch the register file / CMC registry and execute only
/// on the sequential path).
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_data_request(
    dev: usize,
    revision: SpecRevision,
    item: &TrackedRequest,
    loc: &crate::addr::Location,
    mem: &SparseMemory,
    stats: &mut DeviceStats,
    power: &mut PowerModel,
    cycle: u64,
    lane: &mut TraceLane<'_>,
) -> Option<Response> {
    let cmd = item.req.head.cmd;
    let addr = item.req.head.addr;
    let kind = cmd.kind();
    stats.count_kind(kind);

    // One record template covers the whole data path: the mnemonic is
    // derived from the command code at render time, so worker lanes
    // never format or allocate here.
    let cmd_rec = TraceRecord {
        dev: dev as u16,
        quad: loc.quad as u8,
        vault: loc.vault as u16,
        bank: loc.bank as u16,
        tag: item.req.head.tag.value(),
        cmd: CmdRef::Rqst(cmd),
        a: addr,
        ..TraceRecord::new(cycle, TraceKind::Cmd)
    };

    // Revision gate: a Gen1 part rejects Gen2-only commands with an
    // error response (HMC-Sim 1.0 never accepted them).
    if !revision.supports(cmd) {
        lane.emit(TraceRecord {
            b: matches!(revision, SpecRevision::Gen2) as u64,
            ..TraceRecord { kind: TraceKind::CmdReject, ..cmd_rec }
        });
        stats.error_responses += 1;
        return if cmd.is_posted() { None } else { Some(error_response(dev, item, 0x20)) };
    }

    let fail = |stats: &mut DeviceStats, errstat: u8, posted: bool| {
        stats.error_responses += 1;
        if posted {
            None
        } else {
            Some(error_response(dev, item, errstat))
        }
    };

    match kind {
        CmdKind::Flow => {
            lane.emit(cmd_rec);
            None
        }
        CmdKind::Read => {
            lane.emit(cmd_rec);
            let bytes = cmd.fixed_info().expect("standard").data_bytes as usize;
            match mem.read_words(addr, bytes / 8) {
                Ok(payload) => Some(make_response(dev, item, HmcResponse::RdRs, payload, false)),
                Err(_) => fail(stats, 0x01, false),
            }
        }
        CmdKind::Write | CmdKind::PostedWrite => {
            lane.emit(cmd_rec);
            let posted = kind == CmdKind::PostedWrite;
            match mem.write_words(addr, &item.req.payload) {
                Ok(()) => {
                    if posted {
                        None
                    } else {
                        Some(make_response(dev, item, HmcResponse::WrRs, vec![], false))
                    }
                }
                Err(_) => fail(stats, 0x01, posted),
            }
        }
        CmdKind::Atomic | CmdKind::PostedAtomic => {
            lane.emit(cmd_rec);
            power.add_logic_op();
            let posted = kind == CmdKind::PostedAtomic;
            match hmc_mem::amo::execute(cmd, mem, addr, &item.req.payload) {
                Ok(out) => {
                    let rsp_flits = cmd.fixed_info().expect("standard").rsp_flits;
                    if rsp_flits == 0 {
                        None
                    } else if rsp_flits == 1 {
                        Some(make_response(dev, item, HmcResponse::WrRs, vec![], out.af))
                    } else {
                        let mut payload = out.payload;
                        payload.resize(payload_words(rsp_flits), 0);
                        Some(make_response(dev, item, HmcResponse::RdRs, payload, out.af))
                    }
                }
                Err(_) => fail(stats, 0x03, posted),
            }
        }
        CmdKind::ModeRead | CmdKind::ModeWrite | CmdKind::Cmc => {
            unreachable!("serial-only command kinds are routed to execute_request")
        }
    }
}

/// Executes one request against the device state, returning the
/// response packet (None for posted/flow commands). Data-path kinds
/// delegate to [`execute_data_request`]; mode and CMC commands (which
/// touch the register file and CMC registry) are handled here, on the
/// sequential path only.
#[allow(clippy::too_many_arguments)]
fn execute_request(
    dev: usize,
    config: &DeviceConfig,
    item: &TrackedRequest,
    loc: &crate::addr::Location,
    mem: &SparseMemory,
    cmc: &CmcRegistry,
    regs: &mut RegisterFile,
    stats: &mut DeviceStats,
    power: &mut PowerModel,
    cycle: u64,
    tracer: &mut Tracer,
) -> Option<Response> {
    let cmd = item.req.head.cmd;
    let addr = item.req.head.addr;
    let kind = cmd.kind();
    if !matches!(kind, CmdKind::ModeRead | CmdKind::ModeWrite | CmdKind::Cmc) {
        let mut lane = TraceLane::Live(tracer);
        return execute_data_request(
            dev,
            config.revision,
            item,
            loc,
            mem,
            stats,
            power,
            cycle,
            &mut lane,
        );
    }
    stats.count_kind(kind);

    // Record template, as in `execute_data_request`. Mode and CMC
    // commands only run on the sequential path, so the CMC trace name
    // (a dynamic string registered at load time) can be interned in
    // the live tracer — and only when something captures it.
    let cmd_rec = TraceRecord {
        dev: dev as u16,
        quad: loc.quad as u8,
        vault: loc.vault as u16,
        bank: loc.bank as u16,
        tag: item.req.head.tag.value(),
        cmd: CmdRef::Rqst(cmd),
        a: addr,
        ..TraceRecord::new(cycle, TraceKind::Cmd)
    };

    // Revision gate, as in `execute_data_request`.
    if !config.revision.supports(cmd) {
        tracer.emit(TraceRecord {
            b: matches!(config.revision, SpecRevision::Gen2) as u64,
            ..TraceRecord { kind: TraceKind::CmdReject, ..cmd_rec }
        });
        stats.error_responses += 1;
        return if cmd.is_posted() { None } else { Some(error_response(dev, item, 0x20)) };
    }

    let fail = |stats: &mut DeviceStats, errstat: u8, posted: bool| {
        stats.error_responses += 1;
        if posted {
            None
        } else {
            Some(error_response(dev, item, errstat))
        }
    };

    match kind {
        CmdKind::ModeRead => {
            tracer.emit(cmd_rec);
            match regs.read(addr as u32) {
                Ok(v) => Some(make_response(dev, item, HmcResponse::MdRdRs, vec![v, 0], false)),
                Err(_) => fail(stats, 0x02, false),
            }
        }
        CmdKind::ModeWrite => {
            tracer.emit(cmd_rec);
            let value = item.req.payload.first().copied().unwrap_or(0);
            match regs.write(addr as u32, value) {
                Ok(()) => Some(make_response(dev, item, HmcResponse::MdWrRs, vec![], false)),
                Err(_) => fail(stats, 0x02, false),
            }
        }
        CmdKind::Cmc => {
            let HmcRqst::Cmc(code) = cmd else { unreachable!("kind Cmc") };
            // Interning only happens when some destination captures
            // command traffic — a quiet tracer keeps the hot CMC path
            // allocation-free.
            let named = |tracer: &Tracer, name: &str| TraceRecord {
                cmd: if tracer.captures(TraceLevel::CMD.with(TraceLevel::CMC)) {
                    CmdRef::Name(tracer.intern(name))
                } else {
                    CmdRef::None
                },
                ..cmd_rec
            };
            let loaded = match cmc.lookup(code) {
                Ok(loaded) => loaded,
                Err(_) => {
                    // Paper §IV-C2: packets for a command not marked
                    // active return an error.
                    tracer.emit(TraceRecord { cmd: CmdRef::Inactive(code), ..cmd_rec });
                    return fail(stats, 0x10, false);
                }
            };
            let reg = loaded.registration().clone();
            if item.req.head.lng != reg.rqst_len {
                let rec = named(tracer, loaded.trace_name());
                tracer.emit(rec);
                return fail(stats, 0x11, reg.is_posted());
            }
            power.add_logic_op();
            let mut rsp_payload = vec![0u64; reg.rsp_payload_words()];
            let mut ctx = CmcContext {
                dev: dev as u32,
                quad: loc.quad,
                vault: loc.vault,
                bank: loc.bank,
                addr,
                length: item.req.head.lng as u32,
                head: item.req.head.encode(),
                tail: item.req.tail.encode(),
                cycle,
                rqst_payload: &item.req.payload,
                rsp_payload: &mut rsp_payload,
                mem,
            };
            match loaded.execute(&mut ctx) {
                Ok(result) => {
                    // Discrete tracing: the CMC op resolves in the
                    // trace under its cmc_str name like any command.
                    let rec = named(tracer, loaded.trace_name());
                    tracer.emit(rec);
                    tracer.emit(TraceRecord {
                        kind: TraceKind::CmcOp,
                        quad: result.af as u8,
                        a: code as u64,
                        b: reg.rsp_len as u64,
                        ..rec
                    });
                    if reg.is_posted() {
                        None
                    } else {
                        Some(make_response(dev, item, reg.rsp_cmd, rsp_payload, result.af))
                    }
                }
                Err(_) => {
                    let rec = named(tracer, loaded.trace_name());
                    tracer.emit(rec);
                    fail(stats, 0x12, reg.is_posted())
                }
            }
        }
        CmdKind::Flow
        | CmdKind::Read
        | CmdKind::Write
        | CmdKind::PostedWrite
        | CmdKind::Atomic
        | CmdKind::PostedAtomic => {
            unreachable!("data-path kinds are dispatched to execute_data_request")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::Tag;

    fn tracked(req: Request) -> TrackedRequest {
        TrackedRequest {
            req,
            entry_device: 0,
            entry_link: 0,
            issue_cycle: 0,
            hops: 0,
            ready_cycle: 0,
            vault_enq_cycle: 0,
        }
    }

    fn device() -> Device {
        Device::new(0, DeviceConfig::gen2_4link_4gb()).unwrap()
    }

    #[test]
    fn send_counts_flits() {
        let mut dev = device();
        let req = Request::new(
            HmcRqst::Wr64,
            Tag::new(1).unwrap(),
            0x1000,
            Cub::new(0).unwrap(),
            vec![0; 8],
        )
        .unwrap();
        dev.send(0, tracked(req)).unwrap();
        assert_eq!(dev.stats().rqst_flits, 5);
    }

    #[test]
    fn send_invalid_link_rejected() {
        let mut dev = device();
        let req = Request::new(
            HmcRqst::Rd16,
            Tag::new(0).unwrap(),
            0,
            Cub::new(0).unwrap(),
            vec![],
        )
        .unwrap();
        let (_, err) = dev.send(4, tracked(req)).unwrap_err();
        assert!(matches!(err, HmcError::InvalidLink(4)));
    }

    #[test]
    fn full_xbar_queue_stalls_send() {
        let mut cfg = DeviceConfig::gen2_4link_4gb();
        cfg.xbar_queue_depth = 1;
        let mut dev = Device::new(0, cfg).unwrap();
        let mk = || {
            tracked(
                Request::new(
                    HmcRqst::Rd16,
                    Tag::new(0).unwrap(),
                    0,
                    Cub::new(0).unwrap(),
                    vec![],
                )
                .unwrap(),
            )
        };
        dev.send(0, mk()).unwrap();
        let (_, err) = dev.send(0, mk()).unwrap_err();
        assert!(err.is_stall());
        assert_eq!(dev.stats().send_stalls, 1);
    }

    #[test]
    fn full_pipeline_read_round_trip() {
        let mut dev = device();
        dev.mem_mut().write_u64(0x40, 0xABCD).unwrap();
        let req = Request::new(
            HmcRqst::Rd16,
            Tag::new(5).unwrap(),
            0x40,
            Cub::new(0).unwrap(),
            vec![],
        )
        .unwrap();
        dev.send(1, tracked(req)).unwrap();
        let mut tracer = Tracer::disabled();

        // Cycle 0: request routes to its vault.
        dev.route_requests(0, &mut tracer);
        // Cycle 1: vault executes.
        dev.execute_vaults(1, &mut tracer);
        // Cycle 2: response routes and drains.
        dev.route_responses(2, &mut tracer);
        let egress = dev.drain_responses(2);
        assert_eq!(egress.len(), 1);
        match &egress[0] {
            Egress::Deliver(rsp, _) => {
                assert_eq!(rsp.rsp.head.cmd, HmcResponse::RdRs);
                assert_eq!(rsp.rsp.head.tag.value(), 5);
                assert_eq!(rsp.rsp.payload[0], 0xABCD);
                assert_eq!(rsp.entry_link, 0);
            }
            other => panic!("expected delivery, got {other:?}"),
        }
        assert_eq!(dev.stats().reads, 1);
        assert_eq!(dev.stats().responses, 1);
    }

    #[test]
    fn posted_write_generates_no_response() {
        let mut dev = device();
        let req = Request::new(
            HmcRqst::PWr16,
            Tag::new(0).unwrap(),
            0x80,
            Cub::new(0).unwrap(),
            vec![0x11, 0x22],
        )
        .unwrap();
        dev.send(0, tracked(req)).unwrap();
        let mut tracer = Tracer::disabled();
        dev.route_requests(0, &mut tracer);
        dev.execute_vaults(1, &mut tracer);
        dev.route_responses(2, &mut tracer);
        assert!(dev.drain_responses(2).is_empty());
        assert_eq!(dev.mem().read_u64(0x80).unwrap(), 0x11);
        assert_eq!(dev.stats().posted_writes, 1);
        assert_eq!(dev.stats().responses, 0);
    }

    #[test]
    fn inactive_cmc_returns_error_response() {
        let mut dev = device();
        let req = Request::new_cmc(
            125,
            2,
            Tag::new(3).unwrap(),
            0x40,
            Cub::new(0).unwrap(),
            vec![7, 0],
        )
        .unwrap();
        dev.send(0, tracked(req)).unwrap();
        let mut tracer = Tracer::disabled();
        dev.route_requests(0, &mut tracer);
        dev.execute_vaults(1, &mut tracer);
        dev.route_responses(2, &mut tracer);
        let egress = dev.drain_responses(2);
        match &egress[0] {
            Egress::Deliver(rsp, _) => {
                assert_eq!(rsp.rsp.head.cmd, HmcResponse::Error);
                assert_eq!(rsp.rsp.tail.errstat, 0x10);
            }
            other => panic!("expected delivery, got {other:?}"),
        }
        assert_eq!(dev.stats().error_responses, 1);
    }

    #[test]
    fn foreign_cub_is_forwarded() {
        let mut dev = device();
        let req = Request::new(
            HmcRqst::Rd16,
            Tag::new(0).unwrap(),
            0,
            Cub::new(3).unwrap(),
            vec![],
        )
        .unwrap();
        dev.send(0, tracked(req)).unwrap();
        let mut tracer = Tracer::disabled();
        let outcome = dev.route_requests(0, &mut tracer);
        assert_eq!(outcome.forwards.len(), 1);
        assert_eq!(outcome.forwards[0].from_link, 0);
        assert_eq!(outcome.freed_flits[0], 1, "forwarded packet freed its flit");
        assert_eq!(dev.stats().forwarded, 1);
    }

    #[test]
    fn mode_read_reaches_register_file() {
        let mut dev = device();
        let req = Request::new(
            HmcRqst::MdRd,
            Tag::new(2).unwrap(),
            crate::regs::REG_FEAT as u64,
            Cub::new(0).unwrap(),
            vec![],
        )
        .unwrap();
        dev.send(0, tracked(req)).unwrap();
        let mut tracer = Tracer::disabled();
        dev.route_requests(0, &mut tracer);
        dev.execute_vaults(1, &mut tracer);
        dev.route_responses(2, &mut tracer);
        match &dev.drain_responses(2)[0] {
            Egress::Deliver(rsp, _) => {
                assert_eq!(rsp.rsp.head.cmd, HmcResponse::MdRdRs);
                assert_eq!(rsp.rsp.payload[0], 0x44);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bank_latency_stalls_back_to_back_same_bank() {
        let mut cfg = DeviceConfig::gen2_4link_4gb();
        cfg.bank_latency = 4;
        let mut dev = Device::new(0, cfg).unwrap();
        let mk = |tag: u32| {
            tracked(
                Request::new(
                    HmcRqst::Rd16,
                    Tag::new(tag).unwrap(),
                    0x40, // same block -> same bank
                    Cub::new(0).unwrap(),
                    vec![],
                )
                .unwrap(),
            )
        };
        dev.send(0, mk(1)).unwrap();
        dev.send(0, mk(2)).unwrap();
        let mut tracer = Tracer::disabled();
        dev.route_requests(0, &mut tracer);
        dev.route_requests(1, &mut tracer);
        dev.execute_vaults(2, &mut tracer); // first executes, bank busy until 6
        dev.execute_vaults(3, &mut tracer); // second stalls
        assert_eq!(dev.stats().reads, 1);
        assert!(dev.stats().vault_stalls >= 1);
        dev.execute_vaults(7, &mut tracer); // bank free again
        assert_eq!(dev.stats().reads, 2);
    }

    #[test]
    fn trace_records_cmd_events() {
        let mut dev = device();
        let buf = crate::trace::TraceBuffer::new();
        let mut tracer = Tracer::to_buffer(TraceLevel::CMD, buf.clone());
        let req = Request::new(
            HmcRqst::Inc8,
            Tag::new(9).unwrap(),
            0x40,
            Cub::new(0).unwrap(),
            vec![],
        )
        .unwrap();
        dev.send(0, tracked(req)).unwrap();
        dev.route_requests(0, &mut tracer);
        dev.execute_vaults(1, &mut tracer);
        let cmds = buf.grep("CMD=INC8");
        assert_eq!(cmds.len(), 1);
        assert!(cmds[0].contains("TAG=9"));
    }
}
