//! Scenario-facing serialization and oracle accessors.
//!
//! The scenario fuzz farm (`hmc-fuzz`) persists failing scenarios as
//! self-contained JSON reproducers. This module owns the two pieces
//! that belong to the device model:
//!
//! * **serialization** — [`DeviceConfig`] and [`FaultPlan`] (plus the
//!   engine-mode enums) convert to and from the strict [`Json`] value
//!   type, rejecting unknown fields so a corpus file can never be
//!   silently misread;
//! * **the oracle digest** — [`HmcSim::oracle_digest`] condenses the
//!   observable end-of-run state (cycle, deep state fingerprint,
//!   stats counters, latency histogram) into a compact comparable
//!   value. Two runs of the same scenario under different engine
//!   configurations must produce equal digests; each digest field is
//!   hashed separately so a mismatch names the axis that diverged.

use crate::config::{Arbitration, DeviceConfig, ExecMode, SkipMode, SpecRevision};
use crate::dram::{BankTiming, RefreshConfig, RowPolicy};
use crate::fault::{FaultPlan, LinkErrorMode, LinkEvent};
use crate::jsonv::{obj, Json, JsonError, ObjReader};
use crate::link::LinkConfig;
use crate::sim::HmcSim;
use crate::stats::DeviceStats;

// ---------------------------------------------------------------------------
// Oracle digest
// ---------------------------------------------------------------------------

/// Compact end-of-run digest used as the differential-fuzzing oracle.
///
/// Fields are kept separate (rather than folded into one hash) so the
/// fuzzer can classify *which* observable diverged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleDigest {
    /// Simulation cycle at digest time.
    pub cycle: u64,
    /// Deep state fingerprint ([`HmcSim::state_fingerprint`]): queues,
    /// banks, memory digest, RNG state, registers.
    pub fingerprint: u64,
    /// FNV-1a hash over every [`DeviceStats`] counter of every device,
    /// in device order.
    pub stats: u64,
    /// FNV-1a hash over the overall and per-class latency histogram
    /// buckets of every device.
    pub latency: u64,
}

/// FNV-1a: tiny, stable across processes and platforms (unlike
/// `DefaultHasher`, whose algorithm is not a stability guarantee).
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

impl Fnv {
    /// Starts a digest from the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Folds a `u64` (little-endian bytes) into the digest.
    pub fn u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Returns the digest.
    pub fn finish(self) -> u64 {
        self.0
    }
}

fn hash_counters(h: &mut Fnv, s: &DeviceStats) {
    for v in [
        s.reads,
        s.writes,
        s.posted_writes,
        s.atomics,
        s.cmc_ops,
        s.mode_ops,
        s.flow_packets,
        s.responses,
        s.error_responses,
        s.forwarded,
        s.remote_quad_requests,
        s.send_stalls,
        s.xbar_stalls,
        s.vault_stalls,
        s.rqst_flits,
        s.rsp_flits,
        s.vault_faults,
        s.poisoned_responses,
        s.failover_responses,
        s.abandoned_responses,
    ] {
        h.u64(v);
    }
}

fn hash_hist(h: &mut Fnv, hist: &crate::hist::Hist) {
    h.u64(hist.count());
    h.u64(hist.sum());
    h.u64(if hist.is_empty() { 0 } else { hist.min() });
    h.u64(hist.max());
    for (upper, count) in hist.nonzero_buckets() {
        h.u64(upper);
        h.u64(count);
    }
}

impl HmcSim {
    /// Computes the differential-fuzzing oracle digest of the current
    /// state. See [`OracleDigest`].
    pub fn oracle_digest(&self) -> OracleDigest {
        let mut stats = Fnv::new();
        let mut latency = Fnv::new();
        for dev in 0..self.device_count() {
            let s = self.stats(dev).expect("device index in range");
            hash_counters(&mut stats, s);
            hash_hist(&mut latency, &s.latency);
            for (_, hist) in s.class_latency.iter() {
                hash_hist(&mut latency, hist);
            }
        }
        OracleDigest {
            cycle: self.cycle(),
            fingerprint: self.state_fingerprint(),
            stats: stats.finish(),
            latency: latency.finish(),
        }
    }
}

// ---------------------------------------------------------------------------
// Engine-mode serialization
// ---------------------------------------------------------------------------

/// Renders an [`ExecMode`] as its scenario-file form (lane count).
pub fn exec_mode_to_json(mode: ExecMode) -> Json {
    Json::Int(mode.threads() as i128)
}

/// Parses an [`ExecMode`] from its scenario-file form: `1` is
/// sequential, `n > 1` is `Parallel {{ threads: n }}`.
pub fn exec_mode_from_json(v: &Json) -> Result<ExecMode, JsonError> {
    let n = v.as_usize().ok_or(JsonError {
        message: "exec_mode: expected a lane count (integer >= 1)".into(),
    })?;
    match n {
        0 => Err(JsonError { message: "exec_mode: lane count must be >= 1".into() }),
        1 => Ok(ExecMode::Sequential),
        n => Ok(ExecMode::Parallel { threads: n }),
    }
}

/// Renders a [`SkipMode`] as a bool.
pub fn skip_mode_to_json(mode: SkipMode) -> Json {
    Json::Bool(mode.is_on())
}

/// Parses a [`SkipMode`] from a bool.
pub fn skip_mode_from_json(v: &Json) -> Result<SkipMode, JsonError> {
    match v.as_bool() {
        Some(true) => Ok(SkipMode::On),
        Some(false) => Ok(SkipMode::Off),
        None => Err(JsonError { message: "skip_mode: expected a bool".into() }),
    }
}

/// Renders a [`TimingSelect`] as its stable backend name.
pub fn timing_select_to_json(select: crate::timing::TimingSelect) -> Json {
    Json::Str(select.name().to_string())
}

/// Parses a [`TimingSelect`] from its backend name. Unknown backends
/// are rejected loudly — a scenario asking for a model this build does
/// not ship must fail, not silently run the default.
pub fn timing_select_from_json(v: &Json) -> Result<crate::timing::TimingSelect, JsonError> {
    let name = v
        .as_str()
        .ok_or_else(|| JsonError { message: "timing: expected a backend name string".into() })?;
    crate::timing::TimingSelect::from_name(name)
        .map_err(|e| JsonError { message: format!("timing: {e}") })
}

// ---------------------------------------------------------------------------
// FaultPlan serialization
// ---------------------------------------------------------------------------

fn link_error_to_json(mode: LinkErrorMode) -> Json {
    match mode {
        LinkErrorMode::None => obj(vec![("mode", Json::Str("none".into()))]),
        LinkErrorMode::EveryNth(n) => obj(vec![
            ("mode", Json::Str("every_nth".into())),
            ("n", Json::Int(n as i128)),
        ]),
        LinkErrorMode::Random { per_million } => obj(vec![
            ("mode", Json::Str("random".into())),
            ("per_million", Json::Int(per_million as i128)),
        ]),
    }
}

fn link_error_from_json(v: &Json) -> Result<LinkErrorMode, JsonError> {
    let mut r = ObjReader::new("link_error", v)?;
    let mode = match r.str("mode")? {
        "none" => LinkErrorMode::None,
        "every_nth" => LinkErrorMode::EveryNth(r.u64("n")?),
        "random" => LinkErrorMode::Random { per_million: r.u32("per_million")? },
        other => {
            return Err(JsonError {
                message: format!("link_error: unknown mode `{other}`"),
            })
        }
    };
    r.finish()?;
    Ok(mode)
}

/// Renders a [`FaultPlan`] as a JSON object.
pub fn fault_plan_to_json(plan: &FaultPlan) -> Json {
    obj(vec![
        ("seed", Json::Int(plan.seed as i128)),
        ("link_error", link_error_to_json(plan.link_error)),
        ("poison_per_million", Json::Int(plan.poison_per_million as i128)),
        ("vault_error_per_million", Json::Int(plan.vault_error_per_million as i128)),
        (
            "link_schedule",
            Json::Arr(
                plan.link_schedule
                    .iter()
                    .map(|ev| {
                        obj(vec![
                            ("cycle", Json::Int(ev.cycle as i128)),
                            ("link", Json::Int(ev.link as i128)),
                            ("up", Json::Bool(ev.up)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Parses a [`FaultPlan`] from its JSON form (strict: unknown fields
/// are rejected).
pub fn fault_plan_from_json(v: &Json) -> Result<FaultPlan, JsonError> {
    let mut r = ObjReader::new("fault_plan", v)?;
    let seed = r.u64("seed")?;
    let link_error = link_error_from_json(r.required("link_error")?)?;
    let poison_per_million = r.u32("poison_per_million")?;
    let vault_error_per_million = r.u32("vault_error_per_million")?;
    let schedule_json = r.required("link_schedule")?;
    let mut link_schedule = Vec::new();
    for (i, ev) in schedule_json
        .as_arr()
        .ok_or(JsonError { message: "fault_plan: link_schedule must be an array".into() })?
        .iter()
        .enumerate()
    {
        let mut er = ObjReader::new("link_schedule event", ev)?;
        let event = LinkEvent { cycle: er.u64("cycle")?, link: er.usize("link")?, up: er.bool("up")? };
        er.finish().map_err(|e| JsonError {
            message: format!("fault_plan: link_schedule[{i}]: {}", e.message),
        })?;
        link_schedule.push(event);
    }
    r.finish()?;
    Ok(FaultPlan {
        seed,
        link_error,
        poison_per_million,
        vault_error_per_million,
        link_schedule,
    })
}

// ---------------------------------------------------------------------------
// DeviceConfig serialization
// ---------------------------------------------------------------------------

fn opt_u64(v: Option<u64>) -> Json {
    match v {
        Some(n) => Json::Int(n as i128),
        None => Json::Null,
    }
}

fn opt_u32(v: Option<u32>) -> Json {
    match v {
        Some(n) => Json::Int(n as i128),
        None => Json::Null,
    }
}

fn parse_opt_u64(ctx: &str, key: &str, v: &Json) -> Result<Option<u64>, JsonError> {
    match v {
        Json::Null => Ok(None),
        other => other.as_u64().map(Some).ok_or(JsonError {
            message: format!("{ctx}: field `{key}` must be a u64 or null"),
        }),
    }
}

/// Renders a [`DeviceConfig`] (including its fault plan) as JSON.
pub fn device_config_to_json(c: &DeviceConfig) -> Json {
    obj(vec![
        ("links", Json::Int(c.links as i128)),
        ("capacity", Json::Int(c.capacity as i128)),
        ("quads", Json::Int(c.quads as i128)),
        ("vaults_per_quad", Json::Int(c.vaults_per_quad as i128)),
        ("banks_per_vault", Json::Int(c.banks_per_vault as i128)),
        ("block_size", Json::Int(c.block_size as i128)),
        ("vault_queue_depth", Json::Int(c.vault_queue_depth as i128)),
        ("xbar_queue_depth", Json::Int(c.xbar_queue_depth as i128)),
        ("bank_latency", Json::Int(c.bank_latency as i128)),
        ("row_hit", Json::Int(c.bank_timing.row_hit as i128)),
        ("row_miss", Json::Int(c.bank_timing.row_miss as i128)),
        (
            "row_policy",
            Json::Str(
                match c.bank_timing.policy {
                    RowPolicy::OpenPage => "open_page",
                    RowPolicy::ClosedPage => "closed_page",
                }
                .into(),
            ),
        ),
        ("link_bandwidth", Json::Int(c.link_bandwidth as i128)),
        ("vault_bandwidth", Json::Int(c.vault_bandwidth as i128)),
        ("hop_latency", Json::Int(c.hop_latency as i128)),
        ("link_tokens", opt_u32(c.link_config.tokens)),
        ("link_error_period", opt_u64(c.link_config.error_period)),
        ("link_retry_latency", Json::Int(c.link_config.retry_latency as i128)),
        (
            "revision",
            Json::Str(
                match c.revision {
                    SpecRevision::Gen1 => "gen1",
                    SpecRevision::Gen2 => "gen2",
                }
                .into(),
            ),
        ),
        (
            "arbitration",
            Json::Str(
                match c.arbitration {
                    Arbitration::FixedPriority => "fixed_priority",
                    Arbitration::RoundRobin => "round_robin",
                }
                .into(),
            ),
        ),
        ("remote_quad_penalty", Json::Int(c.remote_quad_penalty as i128)),
        ("refresh_interval", opt_u64(c.refresh.map(|r| r.interval))),
        ("refresh_duration", opt_u64(c.refresh.map(|r| r.duration))),
        ("fault", fault_plan_to_json(&c.fault)),
    ])
}

/// Parses a [`DeviceConfig`] from its JSON form (strict: unknown
/// fields are rejected; the result is additionally `validate()`d).
pub fn device_config_from_json(v: &Json) -> Result<DeviceConfig, JsonError> {
    let mut r = ObjReader::new("device_config", v)?;
    let row_policy = match r.str("row_policy")? {
        "open_page" => RowPolicy::OpenPage,
        "closed_page" => RowPolicy::ClosedPage,
        other => {
            return Err(JsonError {
                message: format!("device_config: unknown row_policy `{other}`"),
            })
        }
    };
    let revision = match r.str("revision")? {
        "gen1" => SpecRevision::Gen1,
        "gen2" => SpecRevision::Gen2,
        other => {
            return Err(JsonError {
                message: format!("device_config: unknown revision `{other}`"),
            })
        }
    };
    let arbitration = match r.str("arbitration")? {
        "fixed_priority" => Arbitration::FixedPriority,
        "round_robin" => Arbitration::RoundRobin,
        other => {
            return Err(JsonError {
                message: format!("device_config: unknown arbitration `{other}`"),
            })
        }
    };
    let link_tokens = match r.required("link_tokens")? {
        Json::Null => None,
        other => Some(other.as_u32().ok_or(JsonError {
            message: "device_config: field `link_tokens` must be a u32 or null".into(),
        })?),
    };
    let link_error_period =
        parse_opt_u64("device_config", "link_error_period", r.required("link_error_period")?)?;
    let refresh_interval =
        parse_opt_u64("device_config", "refresh_interval", r.required("refresh_interval")?)?;
    let refresh_duration =
        parse_opt_u64("device_config", "refresh_duration", r.required("refresh_duration")?)?;
    let refresh = match (refresh_interval, refresh_duration) {
        (Some(interval), Some(duration)) => Some(RefreshConfig { interval, duration }),
        (None, None) => None,
        _ => {
            return Err(JsonError {
                message: "device_config: refresh_interval and refresh_duration must both be \
                          set or both be null"
                    .into(),
            })
        }
    };
    let config = DeviceConfig {
        links: r.usize("links")?,
        capacity: r.u64("capacity")?,
        quads: r.usize("quads")?,
        vaults_per_quad: r.usize("vaults_per_quad")?,
        banks_per_vault: r.usize("banks_per_vault")?,
        block_size: r.usize("block_size")?,
        vault_queue_depth: r.usize("vault_queue_depth")?,
        xbar_queue_depth: r.usize("xbar_queue_depth")?,
        bank_latency: r.u64("bank_latency")?,
        bank_timing: BankTiming {
            row_hit: r.u64("row_hit")?,
            row_miss: r.u64("row_miss")?,
            policy: row_policy,
        },
        link_bandwidth: r.usize("link_bandwidth")?,
        vault_bandwidth: r.usize("vault_bandwidth")?,
        hop_latency: r.u64("hop_latency")?,
        link_config: LinkConfig {
            tokens: link_tokens,
            error_period: link_error_period,
            retry_latency: r.u64("link_retry_latency")?,
        },
        revision,
        arbitration,
        remote_quad_penalty: r.u64("remote_quad_penalty")?,
        refresh,
        fault: fault_plan_from_json(r.required("fault")?)?,
    };
    r.finish()?;
    config.validate().map_err(|e| JsonError {
        message: format!("device_config: parsed config is invalid: {e}"),
    })?;
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exotic_config() -> DeviceConfig {
        let mut c = DeviceConfig::gen2_8link_8gb();
        c.bank_latency = 3;
        c.bank_timing = BankTiming { row_hit: 1, row_miss: 7, policy: RowPolicy::ClosedPage };
        c.link_config = LinkConfig { tokens: Some(64), error_period: None, retry_latency: 12 };
        c.arbitration = Arbitration::RoundRobin;
        c.remote_quad_penalty = 2;
        c.refresh = Some(RefreshConfig { interval: 3900, duration: 26 });
        c.fault = FaultPlan::seeded(99)
            .with_link_errors(LinkErrorMode::Random { per_million: 1_000 })
            .with_poison(500)
            .with_vault_errors(2_000)
            .with_link_event(100, 1, false)
            .with_link_event(200, 1, true);
        c
    }

    #[test]
    fn device_config_round_trips() {
        for config in [
            DeviceConfig::gen2_4link_4gb(),
            DeviceConfig::gen2_2link_4gb(),
            DeviceConfig::gen1_4link_2gb(),
            exotic_config(),
        ] {
            let json = device_config_to_json(&config);
            let back = device_config_from_json(&json).unwrap();
            assert_eq!(config, back);
            // And through actual text.
            let reparsed = Json::parse(&json.render()).unwrap();
            assert_eq!(device_config_from_json(&reparsed).unwrap(), config);
        }
    }

    #[test]
    fn fault_plan_round_trips() {
        let plan = exotic_config().fault;
        let back = fault_plan_from_json(&fault_plan_to_json(&plan)).unwrap();
        assert_eq!(plan, back);
        assert_eq!(
            fault_plan_from_json(&fault_plan_to_json(&FaultPlan::none())).unwrap(),
            FaultPlan::none()
        );
    }

    #[test]
    fn unknown_fields_rejected() {
        let mut json = device_config_to_json(&DeviceConfig::gen2_4link_4gb());
        if let Json::Obj(fields) = &mut json {
            fields.push(("mystery_knob".into(), Json::Int(1)));
        }
        let e = device_config_from_json(&json).unwrap_err();
        assert!(e.message.contains("mystery_knob"), "{}", e.message);
    }

    #[test]
    fn invalid_parsed_config_rejected() {
        let mut json = device_config_to_json(&DeviceConfig::gen2_4link_4gb());
        if let Json::Obj(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "links" {
                    *v = Json::Int(3);
                }
            }
        }
        let e = device_config_from_json(&json).unwrap_err();
        assert!(e.message.contains("invalid"), "{}", e.message);
    }

    #[test]
    fn exec_and_skip_modes_round_trip() {
        for mode in [ExecMode::Sequential, ExecMode::Parallel { threads: 8 }] {
            assert_eq!(exec_mode_from_json(&exec_mode_to_json(mode)).unwrap(), mode);
        }
        for mode in [SkipMode::Off, SkipMode::On] {
            assert_eq!(skip_mode_from_json(&skip_mode_to_json(mode)).unwrap(), mode);
        }
        assert!(exec_mode_from_json(&Json::Int(0)).is_err());
    }

    #[test]
    fn timing_select_round_trips_and_rejects_unknowns() {
        use crate::timing::TimingSelect;
        for select in
            [TimingSelect::FixedLatency, TimingSelect::RowBuffer, TimingSelect::Validated]
        {
            assert_eq!(
                timing_select_from_json(&timing_select_to_json(select)).unwrap(),
                select
            );
        }
        let e = timing_select_from_json(&Json::Str("warp_drive".into())).unwrap_err();
        assert!(e.message.contains("unknown timing backend"), "{}", e.message);
        assert!(timing_select_from_json(&Json::Int(1)).is_err());
    }

    #[test]
    fn oracle_digest_distinguishes_axes() {
        let mut a = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let mut b = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        assert_eq!(a.oracle_digest(), b.oracle_digest());
        // Advance only `a`: cycle and fingerprint move, stats do not.
        a.clock();
        let da = a.oracle_digest();
        let db = b.oracle_digest();
        assert_ne!(da.cycle, db.cycle);
        assert_eq!(da.stats, db.stats, "idle cycle leaves counters untouched");
        // Traffic moves stats and latency.
        let tag = a
            .send_simple(0, 0, hmc_types::HmcRqst::Rd16, 0x100, vec![])
            .unwrap()
            .unwrap();
        let _ = a.run_until_response(0, 0, tag, 100).unwrap();
        b.clock_n(a.cycle() - b.cycle());
        let da = a.oracle_digest();
        let db = b.oracle_digest();
        assert_eq!(da.cycle, db.cycle);
        assert_ne!(da.stats, db.stats);
        assert_ne!(da.latency, db.latency);
        assert_ne!(da.fingerprint, db.fingerprint);
    }
}
