//! Trace-file parsing and analysis.
//!
//! HMC-Sim trace output is line-oriented text; users post-process it
//! to study where operations spent their time (paper §IV-A's
//! "powerful tracing capability"). This module parses trace lines
//! back into structured [`TraceEvent`]s and aggregates them into a
//! [`TraceSummary`] (per-command counts, per-vault load histogram,
//! latency distribution, stall census).

use crate::hist::Hist;
use std::collections::BTreeMap;

/// One parsed trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation cycle.
    pub cycle: u64,
    /// Event class tag (`RQST`, `STALL`, `LATENCY`, `CMC`, ...).
    pub class: String,
    /// The free-form detail text.
    pub detail: String,
}

impl TraceEvent {
    /// Parses one `HMCSIM_TRACE : <cycle> : <CLASS> : <detail>` line;
    /// returns `None` for non-trace lines.
    pub fn parse(line: &str) -> Option<TraceEvent> {
        let mut parts = line.splitn(4, " : ");
        if parts.next()?.trim() != "HMCSIM_TRACE" {
            return None;
        }
        let cycle = parts.next()?.trim().parse().ok()?;
        let class = parts.next()?.trim().to_string();
        let detail = parts.next()?.trim().to_string();
        Some(TraceEvent { cycle, class, detail })
    }

    /// Extracts a `KEY=value` field from the detail text.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.detail
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(key)?.strip_prefix('='))
    }

    /// Extracts a numeric `KEY=value` field (decimal or `0x` hex).
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        let raw = self.field(key)?;
        if let Some(hex) = raw.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).ok()
        } else {
            raw.parse().ok()
        }
    }
}

/// Aggregated view of a trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Executed requests per command mnemonic (CMC ops appear under
    /// their `cmc_str` names).
    pub commands: BTreeMap<String, u64>,
    /// Executed requests per vault.
    pub vault_load: BTreeMap<u64, u64>,
    /// Stall events per stall reason text.
    pub stalls: BTreeMap<String, u64>,
    /// Fault events per kind (`CRC`, `VAULT`, `POISON`, `LINKDOWN`,
    /// `LINKUP`, `FAILOVER`, `ZOMBIE`).
    pub faults: BTreeMap<String, u64>,
    /// Completed-request latency distribution (from LATENCY events) —
    /// a [`Hist`], so quantiles come from the shared telemetry
    /// machinery instead of a sorted sample vector.
    pub latency: Hist,
    /// First and last event cycles seen.
    pub cycle_span: Option<(u64, u64)>,
    /// Lines that did not parse as trace events.
    pub skipped_lines: u64,
}

impl TraceSummary {
    /// Builds a summary from trace lines.
    pub fn from_lines<'a>(lines: impl IntoIterator<Item = &'a str>) -> TraceSummary {
        let mut summary = TraceSummary::default();
        for line in lines {
            let Some(event) = TraceEvent::parse(line) else {
                if !line.trim().is_empty() {
                    summary.skipped_lines += 1;
                }
                continue;
            };
            summary.cycle_span = Some(match summary.cycle_span {
                None => (event.cycle, event.cycle),
                Some((lo, hi)) => (lo.min(event.cycle), hi.max(event.cycle)),
            });
            match event.class.as_str() {
                "RQST" => {
                    if let Some(cmd) = event.field("CMD") {
                        *summary.commands.entry(cmd.to_string()).or_default() += 1;
                    }
                    if let Some(vault) = event.field_u64("VAULT") {
                        *summary.vault_load.entry(vault).or_default() += 1;
                    }
                }
                "STALL" | "BANK" | "RETRY" => {
                    *summary.stalls.entry(event.detail.clone()).or_default() += 1;
                }
                "FAULT" => {
                    let kind = event.field("kind").unwrap_or("UNKNOWN").to_string();
                    *summary.faults.entry(kind).or_default() += 1;
                }
                "LATENCY" => {
                    if let Some(lat) = event.field_u64("lat") {
                        summary.latency.record(lat);
                    }
                }
                _ => {}
            }
        }
        summary
    }

    /// Total executed requests.
    pub fn total_requests(&self) -> u64 {
        self.commands.values().sum()
    }

    /// Mean of the recorded latencies.
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean()
    }

    /// The hottest vault and its request count.
    pub fn hottest_vault(&self) -> Option<(u64, u64)> {
        self.vault_load.iter().max_by_key(|(_, &n)| n).map(|(&v, &n)| (v, n))
    }

    /// Renders the summary as a human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        if let Some((lo, hi)) = self.cycle_span {
            let _ = writeln!(out, "cycles {lo}..{hi} ({} events)", self.total_requests());
        }
        let _ = writeln!(out, "commands:");
        for (cmd, n) in &self.commands {
            let _ = writeln!(out, "  {cmd:<16} {n}");
        }
        if let Some((vault, n)) = self.hottest_vault() {
            let _ = writeln!(
                out,
                "hottest vault: {vault} ({n} of {} requests)",
                self.total_requests()
            );
        }
        if !self.latency.is_empty() {
            let _ = writeln!(
                out,
                "latency: mean {:.2}, p50 {}, p99 {}, max {}",
                self.latency.mean(),
                self.latency.p50(),
                self.latency.p99(),
                self.latency.max()
            );
        }
        if !self.stalls.is_empty() {
            let total: u64 = self.stalls.values().sum();
            let _ = writeln!(out, "stalls: {total}");
        }
        if !self.faults.is_empty() {
            let _ = writeln!(out, "faults:");
            for (kind, n) in &self.faults {
                let _ = writeln!(out, "  {kind:<16} {n}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_well_formed_line() {
        let e = TraceEvent::parse(
            "HMCSIM_TRACE : 42 : RQST : CMD=INC8 CUB=0 QUAD=1 VAULT=9 BANK=2 ADDR=0x4000 TAG=7",
        )
        .unwrap();
        assert_eq!(e.cycle, 42);
        assert_eq!(e.class, "RQST");
        assert_eq!(e.field("CMD"), Some("INC8"));
        assert_eq!(e.field_u64("VAULT"), Some(9));
        assert_eq!(e.field_u64("ADDR"), Some(0x4000));
        assert_eq!(e.field("MISSING"), None);
    }

    #[test]
    fn non_trace_lines_rejected() {
        assert!(TraceEvent::parse("").is_none());
        assert!(TraceEvent::parse("random noise").is_none());
        assert!(TraceEvent::parse("HMCSIM_TRACE : notanumber : RQST : x").is_none());
    }

    #[test]
    fn summary_aggregates() {
        let lines = [
            "HMCSIM_TRACE : 1 : RQST : CMD=WR16 CUB=0 QUAD=0 VAULT=4 BANK=0 ADDR=0x0 TAG=0",
            "HMCSIM_TRACE : 2 : RQST : CMD=INC8 CUB=0 QUAD=0 VAULT=4 BANK=0 ADDR=0x0 TAG=1",
            "HMCSIM_TRACE : 3 : RQST : CMD=hmc_lock CUB=0 QUAD=1 VAULT=9 BANK=0 ADDR=0x40 TAG=2",
            "HMCSIM_TRACE : 4 : LATENCY : tag=0 lat=3 link=0",
            "HMCSIM_TRACE : 6 : LATENCY : tag=2 lat=5 link=1",
            "HMCSIM_TRACE : 7 : STALL : vault rqst queue full: link=0 vault=4",
            "HMCSIM_TRACE : 8 : FAULT : kind=CRC dev=0 link=1 bit=17 replay at 16 (CRC mismatch)",
            "HMCSIM_TRACE : 9 : FAULT : kind=VAULT vault=3 tag=9 errstat=0x30",
            "HMCSIM_TRACE : 10 : FAULT : kind=VAULT vault=5 tag=2 errstat=0x30",
            "garbage line",
        ];
        let s = TraceSummary::from_lines(lines);
        assert_eq!(s.total_requests(), 3);
        assert_eq!(s.commands["hmc_lock"], 1);
        assert_eq!(s.vault_load[&4], 2);
        assert_eq!(s.hottest_vault(), Some((4, 2)));
        assert_eq!(s.latency.count(), 2);
        assert_eq!(s.latency.p50(), 3);
        assert_eq!(s.latency.p99(), 5);
        assert_eq!(s.mean_latency(), 4.0);
        assert_eq!(s.skipped_lines, 1);
        assert_eq!(s.cycle_span, Some((1, 10)));
        assert_eq!(s.faults["CRC"], 1);
        assert_eq!(s.faults["VAULT"], 2);
        let report = s.render();
        assert!(report.contains("hottest vault: 4"));
        assert!(report.contains("hmc_lock"));
        assert!(report.contains("faults:"));
        assert!(report.contains("VAULT"));
    }

    #[test]
    fn empty_summary() {
        let s = TraceSummary::from_lines([]);
        assert_eq!(s.total_requests(), 0);
        assert_eq!(s.mean_latency(), 0.0);
        assert!(s.hottest_vault().is_none());
    }
}
