//! SimSanitizer — cycle-level invariant checking, stall watchdog and
//! crash forensics.
//!
//! When enabled on a [`crate::config::SimConfig`] (or via
//! [`HmcSim::enable_sanitizer`]), the sanitizer audits conservation
//! invariants at every `clock()` boundary:
//!
//! * **packet conservation** — packets injected = packets still in
//!   the fabric + delivered + absorbed (posted/flow, no response) +
//!   dropped as zombies;
//! * **token conservation** — a link's outstanding tokens exactly
//!   cover the FLITs held in its crossbar input queue and retry
//!   buffer (host-only topologies), the pool never exceeds its
//!   configured size, and over-returns counted by
//!   [`crate::link::LinkStats::token_overflows`] are surfaced;
//! * **tag consistency** — no tag simultaneously live and free
//!   ([`hmc_types::TagPool::audit`]), every pool-registered tag live,
//!   no zombie entry left behind after its response died;
//! * **queue bounds** — no queue above its configured depth;
//! * **response causality** — no response delivered for a tag that
//!   was never injected (phantom detection);
//!
//! plus a **stall watchdog** that fires when packets are resident in
//! the fabric yet nothing has moved for `watchdog_cycles` cycles.
//!
//! On violation the configured [`SanitizerPolicy`] drives the
//! reaction; `Report` and `Panic` capture a [`ForensicDump`] (full
//! [`SimSnapshot`] + recent trace ring) first, so the crash state is
//! always inspectable. The sanitizer is **default-off and
//! zero-perturbation**: with no sanitizer attached the clock path
//! pays one `Option` check, and an attached sanitizer in `Report`
//! mode only observes (`tests/no_perturbation.rs` pins this).

use crate::config::LinkTopology;
use crate::sim::HmcSim;
use crate::snapshot::{ForensicDump, SimSnapshot};
use crate::trace::{TraceKind, TraceLevel, TraceRecord, TraceRing};
use hmc_types::Tag;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;

/// What the sanitizer does when an invariant violation is detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SanitizerPolicy {
    /// Capture a forensic dump, then panic with the first violation.
    Panic,
    /// Capture a forensic dump and keep simulating (default).
    #[default]
    Report,
    /// Repair the inconsistent state (token pools, tag registries,
    /// conservation counters) and keep simulating.
    Recover,
}

/// Sanitizer configuration, carried on
/// [`crate::config::SimConfig::sanitizer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SanitizerConfig {
    /// Master switch; `false` keeps the simulator bit-identical to an
    /// unsanitized run.
    pub enabled: bool,
    /// Reaction to a detected violation.
    pub policy: SanitizerPolicy,
    /// Cycles of zero progress (with packets resident) before the
    /// stall watchdog fires. 0 disables the watchdog.
    pub watchdog_cycles: u64,
    /// Capacity of the forensic trace ring (recent trace events kept
    /// for the dump, independent of the tracer's level mask). 0
    /// disables the ring.
    pub trace_ring: usize,
    /// Take a checkpoint snapshot every N cycles (0 = never); the
    /// latest is available via [`HmcSim::sanitizer_checkpoint`] and
    /// bounds the replay window after a violation.
    pub checkpoint_every: u64,
    /// Maximum violations retained in the report (the total is still
    /// counted past this bound).
    pub max_violations: usize,
    /// When set, forensic dumps are written as
    /// `<dir>/forensic-c<cycle>.json`.
    pub dump_dir: Option<PathBuf>,
}

impl SanitizerConfig {
    /// The default-off configuration (no sanitizer attached).
    pub fn disabled() -> Self {
        SanitizerConfig {
            enabled: false,
            policy: SanitizerPolicy::Report,
            watchdog_cycles: 10_000,
            trace_ring: 256,
            checkpoint_every: 0,
            max_violations: 64,
            dump_dir: None,
        }
    }

    /// Enabled, report-only (capture dumps, keep simulating).
    pub fn report() -> Self {
        SanitizerConfig { enabled: true, ..Self::disabled() }
    }

    /// Enabled, panicking on the first violation (CI chaos mode).
    pub fn panicking() -> Self {
        SanitizerConfig { policy: SanitizerPolicy::Panic, ..Self::report() }
    }

    /// Enabled, repairing violations in place.
    pub fn recovering() -> Self {
        SanitizerConfig { policy: SanitizerPolicy::Recover, ..Self::report() }
    }
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// The class of a detected invariant violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ViolationKind {
    /// A token return pushed a pool past its configured size.
    TokenOverReturn,
    /// A token pool holds more tokens than its configured size.
    TokenPoolOverflow,
    /// Outstanding tokens do not match the FLITs actually held in the
    /// link's queues (host-only topology).
    TokenConservation,
    /// A tag pool failed its internal audit (tag both live and free,
    /// duplicate free entry, count mismatch).
    TagPoolCorrupt,
    /// A pool-registered in-flight tag is not live in its pool.
    TagLiveAndFree,
    /// A zombie entry exists for a tag with no in-flight response.
    ZombieTagLeak,
    /// Packets injected ≠ in fabric + delivered + absorbed + zombies.
    PacketConservation,
    /// A response was delivered for a tag that was never injected.
    PhantomResponse,
    /// A second in-flight request reused a live (device, link, tag).
    DuplicateLiveTag,
    /// A queue's occupancy exceeds its configured depth.
    QueueOverflow,
    /// Packets are resident but nothing has moved for the configured
    /// number of cycles.
    StallWatchdog,
}

impl ViolationKind {
    /// Stable kebab-case name (used in forensic-dump JSON).
    pub fn name(&self) -> &'static str {
        match self {
            ViolationKind::TokenOverReturn => "token-over-return",
            ViolationKind::TokenPoolOverflow => "token-pool-overflow",
            ViolationKind::TokenConservation => "token-conservation",
            ViolationKind::TagPoolCorrupt => "tag-pool-corrupt",
            ViolationKind::TagLiveAndFree => "tag-live-and-free",
            ViolationKind::ZombieTagLeak => "zombie-tag-leak",
            ViolationKind::PacketConservation => "packet-conservation",
            ViolationKind::PhantomResponse => "phantom-response",
            ViolationKind::DuplicateLiveTag => "duplicate-live-tag",
            ViolationKind::QueueOverflow => "queue-overflow",
            ViolationKind::StallWatchdog => "stall-watchdog",
        }
    }

    /// Parses a [`ViolationKind::name`] string back into the kind
    /// (checkpoint deserialization). Returns `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "token-over-return" => ViolationKind::TokenOverReturn,
            "token-pool-overflow" => ViolationKind::TokenPoolOverflow,
            "token-conservation" => ViolationKind::TokenConservation,
            "tag-pool-corrupt" => ViolationKind::TagPoolCorrupt,
            "tag-live-and-free" => ViolationKind::TagLiveAndFree,
            "zombie-tag-leak" => ViolationKind::ZombieTagLeak,
            "packet-conservation" => ViolationKind::PacketConservation,
            "phantom-response" => ViolationKind::PhantomResponse,
            "duplicate-live-tag" => ViolationKind::DuplicateLiveTag,
            "queue-overflow" => ViolationKind::QueueOverflow,
            "stall-watchdog" => ViolationKind::StallWatchdog,
            _ => return None,
        })
    }
}

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Cycle the check ran at.
    pub cycle: u64,
    /// Violation class.
    pub kind: ViolationKind,
    /// Human-readable description with the offending values.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] cycle {}: {}", self.kind.name(), self.cycle, self.detail)
    }
}

/// Cumulative sanitizer results, readable any time via
/// [`HmcSim::sanitizer_report`].
#[derive(Debug, Clone, Default)]
pub struct SanitizerReport {
    /// Retained violations (bounded by
    /// [`SanitizerConfig::max_violations`]).
    pub violations: Vec<Violation>,
    /// Every violation ever detected, including those past the bound.
    pub total_violations: u64,
    /// Violations repaired under [`SanitizerPolicy::Recover`].
    pub recovered: u64,
    /// Clock boundaries audited.
    pub cycles_checked: u64,
    /// Periodic checkpoints taken.
    pub checkpoints_taken: u64,
}

/// The sanitizer's shadow accounting: an independent tally of packet
/// and tag flow, updated by clock-path hooks and reconciled against
/// the structural state at every cycle boundary.
#[derive(Debug, Clone, Default)]
pub struct SanitizerShadow {
    /// Packets accepted into the fabric by `send`.
    pub injected: u64,
    /// Responses delivered to a host receive buffer.
    pub delivered: u64,
    /// Requests retired without a response (posted/flow/faulted).
    pub absorbed: u64,
    /// Stale responses dropped because the host abandoned the tag.
    pub zombie_dropped: u64,
    /// Tags with an expected in-flight response, keyed by
    /// `(device, entry link, tag)`.
    pub live_tags: HashSet<(usize, usize, u16)>,
    /// Per-`[dev][link]` token-overflow counts already reported (for
    /// delta detection).
    pub seen_token_overflows: Vec<Vec<u64>>,
    /// Violations recorded by mid-cycle hooks, drained at the next
    /// boundary check.
    pub pending: Vec<Violation>,
}

/// The attached sanitizer (one per [`HmcSim`], behind
/// `Option<Box<_>>` so the disabled path costs a single branch).
#[derive(Debug)]
pub struct Sanitizer {
    pub(crate) config: SanitizerConfig,
    pub(crate) shadow: SanitizerShadow,
    pub(crate) ring: Option<TraceRing>,
    report: SanitizerReport,
    /// Watchdog: fingerprint of the last observed progress state.
    watch_fp: Option<u64>,
    stalled_cycles: u64,
    last_checkpoint: Option<SimSnapshot>,
    last_dump: Option<ForensicDump>,
}

impl Sanitizer {
    pub(crate) fn new(config: SanitizerConfig) -> Self {
        let ring =
            if config.trace_ring > 0 { Some(TraceRing::new(config.trace_ring)) } else { None };
        Sanitizer {
            config,
            shadow: SanitizerShadow::default(),
            ring,
            report: SanitizerReport::default(),
            watch_fp: None,
            stalled_cycles: 0,
            last_checkpoint: None,
            last_dump: None,
        }
    }

    /// Rebases the shadow accounting to the simulator's current
    /// structural state: used at enable time and when restoring a
    /// snapshot that carries no shadow. Raw-injected tags already in
    /// flight at enable time are reconstructed from the pool
    /// registries; tags injected via raw `send` before enabling are
    /// unknowable and will surface as phantom responses.
    pub(crate) fn rebase(&mut self, sim: &HmcSim) {
        self.shadow.delivered = 0;
        self.shadow.absorbed = 0;
        self.shadow.zombie_dropped = 0;
        self.shadow.injected = sim.live_packets();
        self.shadow.live_tags.clear();
        for (dev, links) in sim.pool_tags.iter().enumerate() {
            for (link, set) in links.iter().enumerate() {
                for &tag in set {
                    self.shadow.live_tags.insert((dev, link, tag));
                }
            }
        }
        for (dev, set) in sim.zombie_tags.iter().enumerate() {
            for &(link, tag) in set {
                self.shadow.live_tags.insert((dev, link, tag));
            }
        }
        self.shadow.seen_token_overflows = sim
            .links
            .iter()
            .map(|d| d.iter().map(|l| l.stats.token_overflows).collect())
            .collect();
        self.shadow.pending.clear();
    }

    /// Clears the stall watchdog (after a restore, where the
    /// fingerprint would compare states across a discontinuity).
    pub(crate) fn reset_watchdog(&mut self) {
        self.watch_fp = None;
        self.stalled_cycles = 0;
    }

    /// Hook: a packet was accepted into the fabric. `tracked` marks
    /// requests that will produce a response (their tag goes live).
    pub(crate) fn note_injected(
        &mut self,
        dev: usize,
        link: usize,
        tag: u16,
        tracked: bool,
        cycle: u64,
    ) {
        self.shadow.injected += 1;
        if tracked && !self.shadow.live_tags.insert((dev, link, tag)) {
            self.shadow.pending.push(Violation {
                cycle,
                kind: ViolationKind::DuplicateLiveTag,
                detail: format!(
                    "tag {tag} on dev {dev} link {link} reused while its response is in flight"
                ),
            });
        }
    }

    /// Hook: a response is about to be delivered to a host receive
    /// buffer. Returns `false` when the response is a phantom (never
    /// injected) and the policy is `Recover` — the caller drops it.
    pub(crate) fn note_delivered(
        &mut self,
        dev: usize,
        entry_link: usize,
        tag: u16,
        cycle: u64,
    ) -> bool {
        if self.shadow.live_tags.remove(&(dev, entry_link, tag)) {
            self.shadow.delivered += 1;
            return true;
        }
        self.shadow.pending.push(Violation {
            cycle,
            kind: ViolationKind::PhantomResponse,
            detail: format!(
                "response for tag {tag} on dev {dev} link {entry_link} was never injected"
            ),
        });
        if self.config.policy == SanitizerPolicy::Recover {
            self.report.recovered += 1;
            return false;
        }
        true
    }

    /// Hook: a stale response died at delivery because the host had
    /// abandoned its tag.
    pub(crate) fn note_zombie(&mut self, dev: usize, entry_link: usize, tag: u16, cycle: u64) {
        if self.shadow.live_tags.remove(&(dev, entry_link, tag)) {
            self.shadow.zombie_dropped += 1;
        } else {
            self.shadow.pending.push(Violation {
                cycle,
                kind: ViolationKind::PhantomResponse,
                detail: format!(
                    "zombie response for tag {tag} on dev {dev} link {entry_link} was never \
                     injected"
                ),
            });
        }
    }

    /// Hook: `n` requests retired without generating a response
    /// (posted writes, flow packets, posted vault faults).
    pub(crate) fn note_absorbed(&mut self, n: u64) {
        self.shadow.absorbed += n;
    }

    /// The cumulative report.
    pub(crate) fn report(&self) -> &SanitizerReport {
        &self.report
    }

    pub(crate) fn last_dump(&self) -> Option<&ForensicDump> {
        self.last_dump.as_ref()
    }

    pub(crate) fn take_last_dump(&mut self) -> Option<ForensicDump> {
        self.last_dump.take()
    }

    pub(crate) fn last_checkpoint(&self) -> Option<&SimSnapshot> {
        self.last_checkpoint.as_ref()
    }

    /// Runs every boundary check against `sim`'s structural state.
    /// Returns the fatal panic message under [`SanitizerPolicy::Panic`]
    /// (the caller panics after re-attaching the sanitizer, so the
    /// forensic dump survives `catch_unwind`).
    pub(crate) fn end_of_cycle(&mut self, sim: &mut HmcSim, cycle: u64) -> Option<String> {
        self.report.cycles_checked += 1;
        let mut violations = std::mem::take(&mut self.shadow.pending);
        self.check_tokens(sim, cycle, &mut violations);
        self.check_tags(sim, cycle, &mut violations);
        self.check_queues(sim, cycle, &mut violations);
        self.check_conservation(sim, cycle, &mut violations);
        self.check_watchdog(sim, cycle, &mut violations);

        let mut fatal = None;
        if !violations.is_empty() {
            // Stamp the audit into the structured stream *before* the
            // dump snapshots the flight recorder, so the dump's own
            // timeline ends with the audit that produced it.
            if sim.tracer.captures(TraceLevel::ENGINE) {
                sim.tracer.emit(TraceRecord {
                    a: violations.len() as u64,
                    ..TraceRecord::new(cycle, TraceKind::SanitizerAudit)
                });
            }
            self.report.total_violations += violations.len() as u64;
            for v in &violations {
                if self.report.violations.len() < self.config.max_violations {
                    self.report.violations.push(v.clone());
                }
            }
            // The dump's snapshot carries the *pre-acknowledgement*
            // shadow, so restoring it and clocking once re-detects the
            // same violation at the same cycle.
            if self.config.policy != SanitizerPolicy::Recover {
                let dump = ForensicDump {
                    cycle,
                    violations: violations.clone(),
                    snapshot: sim.snapshot_with_shadow(Some(self.shadow.clone())),
                    trace: self.ring.as_ref().map(TraceRing::lines).unwrap_or_default(),
                    checkpoint_cycle: self.last_checkpoint.as_ref().map(SimSnapshot::cycle),
                    telemetry_json: sim.telemetry_report().map(|r| r.to_json()),
                    flight: sim.flight_snapshot(),
                };
                if let Some(dir) = &self.config.dump_dir {
                    let path = dir.join(format!("forensic-c{cycle}.json"));
                    let _ = dump.write_to(&path);
                }
                self.last_dump = Some(dump);
            }
            if self.config.policy == SanitizerPolicy::Panic {
                fatal = Some(format!(
                    "sanitizer: {} violation(s) at cycle {cycle}; first: {}",
                    violations.len(),
                    violations[0]
                ));
            }
        }

        // Acknowledge over-return deltas (after the dump captured the
        // pre-ack state) so each event reports exactly once.
        for (dev, links) in sim.links.iter().enumerate() {
            for (link, lc) in links.iter().enumerate() {
                self.shadow.seen_token_overflows[dev][link] = lc.stats.token_overflows;
            }
        }

        if !violations.is_empty() && self.config.policy == SanitizerPolicy::Recover {
            self.recover(sim);
            self.report.recovered += violations.len() as u64;
        }

        // Periodic checkpoint, taken last so it carries a clean
        // (acknowledged) shadow that will not re-fire old violations.
        if self.config.checkpoint_every > 0 && cycle.is_multiple_of(self.config.checkpoint_every)
        {
            self.last_checkpoint = Some(sim.snapshot_with_shadow(Some(self.shadow.clone())));
            self.report.checkpoints_taken += 1;
            if sim.tracer.captures(TraceLevel::ENGINE) {
                sim.tracer.emit(TraceRecord {
                    a: cycle,
                    ..TraceRecord::new(cycle, TraceKind::Checkpoint)
                });
            }
        }

        fatal
    }

    fn check_tokens(&self, sim: &HmcSim, cycle: u64, out: &mut Vec<Violation>) {
        for (dev, links) in sim.links.iter().enumerate() {
            for (link, lc) in links.iter().enumerate() {
                if let Some(cap) = sim.config.devices[dev].link_config.tokens {
                    if lc.tokens_available() > cap {
                        out.push(Violation {
                            cycle,
                            kind: ViolationKind::TokenPoolOverflow,
                            detail: format!(
                                "dev {dev} link {link}: {} tokens exceed pool size {cap}",
                                lc.tokens_available()
                            ),
                        });
                    }
                    // FLIT conservation: tokens outstanding must equal
                    // the FLITs physically held on the link's behalf.
                    // Chained topologies forward packets without
                    // consuming tokens, so the equality only holds
                    // host-only.
                    if matches!(sim.config.topology, LinkTopology::HostOnly) {
                        let held = sim.devices[dev].xbar_rqst_flits(link)
                            + sim
                                .retry_pending
                                .iter()
                                .filter(|e| e.dev == dev && e.link == link)
                                .map(|e| e.item.req.flits() as u64)
                                .sum::<u64>();
                        let outstanding = cap.saturating_sub(lc.tokens_available()) as u64;
                        if outstanding != held {
                            out.push(Violation {
                                cycle,
                                kind: ViolationKind::TokenConservation,
                                detail: format!(
                                    "dev {dev} link {link}: {outstanding} tokens outstanding \
                                     but {held} FLITs held"
                                ),
                            });
                        }
                    }
                }
                let seen = self.shadow.seen_token_overflows[dev][link];
                if lc.stats.token_overflows > seen {
                    out.push(Violation {
                        cycle,
                        kind: ViolationKind::TokenOverReturn,
                        detail: format!(
                            "dev {dev} link {link}: {} token over-return(s) this cycle \
                             ({} total)",
                            lc.stats.token_overflows - seen,
                            lc.stats.token_overflows
                        ),
                    });
                }
            }
        }
    }

    fn check_tags(&self, sim: &HmcSim, cycle: u64, out: &mut Vec<Violation>) {
        for (dev, pools) in sim.tag_pools.iter().enumerate() {
            for (link, pool) in pools.iter().enumerate() {
                if let Err(e) = pool.audit() {
                    out.push(Violation {
                        cycle,
                        kind: ViolationKind::TagPoolCorrupt,
                        detail: format!("dev {dev} link {link}: {e}"),
                    });
                }
                let mut tags: Vec<u16> = sim.pool_tags[dev][link].iter().copied().collect();
                tags.sort_unstable();
                for tag in tags {
                    let live = Tag::new(tag as u32).map(|t| pool.is_live(t)).unwrap_or(false);
                    if !live {
                        out.push(Violation {
                            cycle,
                            kind: ViolationKind::TagLiveAndFree,
                            detail: format!(
                                "dev {dev} link {link}: registered in-flight tag {tag} is \
                                 free in its pool"
                            ),
                        });
                    }
                }
            }
        }
        for (dev, set) in sim.zombie_tags.iter().enumerate() {
            let mut zombies: Vec<(usize, u16)> = set.iter().copied().collect();
            zombies.sort_unstable();
            for (link, tag) in zombies {
                if !self.shadow.live_tags.contains(&(dev, link, tag)) {
                    out.push(Violation {
                        cycle,
                        kind: ViolationKind::ZombieTagLeak,
                        detail: format!(
                            "dev {dev} link {link}: zombie tag {tag} has no in-flight \
                             response and can never be reclaimed"
                        ),
                    });
                }
            }
        }
    }

    fn check_queues(&self, sim: &HmcSim, cycle: u64, out: &mut Vec<Violation>) {
        for (dev, d) in sim.devices.iter().enumerate() {
            if let Some(msg) = d.queue_bound_violation() {
                out.push(Violation {
                    cycle,
                    kind: ViolationKind::QueueOverflow,
                    detail: format!("dev {dev}: {msg}"),
                });
            }
        }
    }

    fn check_conservation(&self, sim: &HmcSim, cycle: u64, out: &mut Vec<Violation>) {
        let live = sim.live_packets();
        let accounted =
            live + self.shadow.delivered + self.shadow.absorbed + self.shadow.zombie_dropped;
        if self.shadow.injected != accounted {
            out.push(Violation {
                cycle,
                kind: ViolationKind::PacketConservation,
                detail: format!(
                    "{} injected != {live} in fabric + {} delivered + {} absorbed + {} \
                     zombie-dropped",
                    self.shadow.injected,
                    self.shadow.delivered,
                    self.shadow.absorbed,
                    self.shadow.zombie_dropped
                ),
            });
        }
    }

    fn check_watchdog(&mut self, sim: &HmcSim, cycle: u64, out: &mut Vec<Violation>) {
        if self.config.watchdog_cycles == 0 {
            return;
        }
        if sim.live_packets() == 0 {
            self.watch_fp = None;
            self.stalled_cycles = 0;
            return;
        }
        let fp = self.progress_fingerprint(sim);
        if self.watch_fp == Some(fp) {
            self.stalled_cycles += 1;
        } else {
            self.watch_fp = Some(fp);
            self.stalled_cycles = 0;
        }
        if self.stalled_cycles >= self.config.watchdog_cycles {
            out.push(Violation {
                cycle,
                kind: ViolationKind::StallWatchdog,
                detail: format!(
                    "{} packet(s) resident but nothing moved for {} cycles",
                    sim.live_packets(),
                    self.stalled_cycles
                ),
            });
            // Re-arm instead of firing every subsequent cycle.
            self.stalled_cycles = 0;
        }
    }

    /// Hash of everything that changes when the simulation makes
    /// progress: queue occupancies, transit/retry population, shadow
    /// counters and link packet counts. Deliberately excludes the
    /// cycle counter.
    fn progress_fingerprint(&self, sim: &HmcSim) -> u64 {
        let mut h = DefaultHasher::new();
        for d in &sim.devices {
            d.occupancy_signature(&mut h);
        }
        for q in &sim.transit_queues {
            q.len().hash(&mut h);
        }
        sim.retry_pending.len().hash(&mut h);
        for q in sim.host_rx.iter().flatten() {
            q.len().hash(&mut h);
        }
        self.shadow.injected.hash(&mut h);
        self.shadow.delivered.hash(&mut h);
        self.shadow.absorbed.hash(&mut h);
        self.shadow.zombie_dropped.hash(&mut h);
        for l in sim.links.iter().flatten() {
            l.stats.packets_sent.hash(&mut h);
        }
        h.finish()
    }

    /// [`SanitizerPolicy::Recover`]: repairs token pools to match the
    /// FLITs actually held, drops tag-registry entries and zombie
    /// records with no backing state, and rebases the conservation
    /// counters so subsequent cycles check cleanly.
    fn recover(&mut self, sim: &mut HmcSim) {
        for dev in 0..sim.devices.len() {
            for link in 0..sim.links[dev].len() {
                if let Some(cap) = sim.config.devices[dev].link_config.tokens {
                    if matches!(sim.config.topology, LinkTopology::HostOnly) {
                        let held = sim.devices[dev].xbar_rqst_flits(link)
                            + sim
                                .retry_pending
                                .iter()
                                .filter(|e| e.dev == dev && e.link == link)
                                .map(|e| e.item.req.flits() as u64)
                                .sum::<u64>();
                        let avail = cap.saturating_sub(held.min(cap as u64) as u32);
                        sim.links[dev][link].force_tokens(avail);
                    } else if sim.links[dev][link].tokens_available() > cap {
                        sim.links[dev][link].force_tokens(cap);
                    }
                }
            }
        }
        for dev in 0..sim.tag_pools.len() {
            for link in 0..sim.tag_pools[dev].len() {
                let pool = &sim.tag_pools[dev][link];
                sim.pool_tags[dev][link]
                    .retain(|&t| Tag::new(t as u32).map(|tag| pool.is_live(tag)).unwrap_or(false));
            }
        }
        for (dev, set) in sim.zombie_tags.iter_mut().enumerate() {
            let live = &self.shadow.live_tags;
            set.retain(|&(link, tag)| live.contains(&(dev, link, tag)));
        }
        // Rebase the conservation tally, preserving history counters.
        self.shadow.injected = sim.live_packets()
            + self.shadow.delivered
            + self.shadow.absorbed
            + self.shadow.zombie_dropped;
    }

    /// How many of the next `k` cycles (starting at `cycle`) the
    /// event-horizon engine may compress without changing anything
    /// this sanitizer would have observed or reported cycle by cycle.
    ///
    /// Returns 0 when the current cycle must run the full audit: a
    /// mid-cycle hook left pending violations, any structural check
    /// fails right now (the violation must be recorded at *this*
    /// cycle), the watchdog would fire inside the region, or `cycle`
    /// lands on a checkpoint multiple. Otherwise the result is capped
    /// so that neither the watchdog threshold nor the next checkpoint
    /// multiple falls strictly inside the compressed region.
    pub(crate) fn idle_skip_allowance(&self, sim: &HmcSim, cycle: u64, k: u64) -> u64 {
        if !self.shadow.pending.is_empty() {
            return 0;
        }
        // The structural checks are pure reads; in a quiescent fabric
        // their verdict is the same for every cycle of the region, so
        // one evaluation covers all of it.
        let mut scratch = Vec::new();
        self.check_tokens(sim, cycle, &mut scratch);
        self.check_tags(sim, cycle, &mut scratch);
        self.check_queues(sim, cycle, &mut scratch);
        self.check_conservation(sim, cycle, &mut scratch);
        if !scratch.is_empty() {
            return 0;
        }
        let mut k = k;
        if self.config.watchdog_cycles > 0 && sim.live_packets() > 0 {
            // In an idle region the progress fingerprint is constant,
            // so the per-cycle watchdog would count every skipped
            // cycle as stalled. Cap the region so the threshold is
            // reached — and the violation recorded — under the full
            // per-cycle path.
            let headroom = if self.watch_fp == Some(self.progress_fingerprint(sim)) {
                (self.config.watchdog_cycles - 1).saturating_sub(self.stalled_cycles)
            } else {
                self.config.watchdog_cycles
            };
            if headroom == 0 {
                return 0;
            }
            k = k.min(headroom);
        }
        if self.config.checkpoint_every > 0 {
            if cycle.is_multiple_of(self.config.checkpoint_every) {
                return 0;
            }
            let next = cycle.next_multiple_of(self.config.checkpoint_every);
            k = k.min(next - cycle);
        }
        k
    }

    /// Folds `k` compressed idle cycles into the sanitizer's
    /// bookkeeping — exactly what `k` per-cycle [`Sanitizer::end_of_cycle`]
    /// calls would have done across a region pre-approved by
    /// [`Sanitizer::idle_skip_allowance`] (no violations, no watchdog
    /// firing, no checkpoint multiple, token-overflow acks all
    /// no-ops).
    pub(crate) fn advance_idle(&mut self, sim: &HmcSim, k: u64) {
        self.report.cycles_checked += k;
        if self.config.watchdog_cycles == 0 {
            return;
        }
        if sim.live_packets() == 0 {
            self.watch_fp = None;
            self.stalled_cycles = 0;
            return;
        }
        let fp = self.progress_fingerprint(sim);
        if self.watch_fp == Some(fp) {
            self.stalled_cycles += k;
        } else {
            // The first skipped cycle observes a fresh fingerprint
            // (stall count 0); the remaining k - 1 see it unchanged.
            self.watch_fp = Some(fp);
            self.stalled_cycles = k - 1;
        }
    }
}

impl HmcSim {
    /// Attaches a sanitizer. The shadow accounting is rebased to the
    /// current structural state, so enabling mid-run is legal (tags
    /// injected via raw `send` before this point will surface as
    /// phantom responses when they deliver).
    pub fn enable_sanitizer(&mut self, config: SanitizerConfig) {
        let mut san = Box::new(Sanitizer::new(config));
        san.rebase(self);
        if let Some(ring) = &san.ring {
            self.tracer.attach_ring(ring.clone());
        }
        self.sanitizer = Some(san);
    }

    /// Detaches the sanitizer, returning its final report.
    pub fn disable_sanitizer(&mut self) -> Option<SanitizerReport> {
        self.tracer.detach_ring();
        self.sanitizer.take().map(|s| s.report)
    }

    /// True when a sanitizer is attached.
    pub fn sanitizer_enabled(&self) -> bool {
        self.sanitizer.is_some()
    }

    /// The attached sanitizer's cumulative report.
    pub fn sanitizer_report(&self) -> Option<&SanitizerReport> {
        self.sanitizer.as_ref().map(|s| s.report())
    }

    /// The most recent forensic dump, if a violation has been
    /// captured.
    pub fn forensic_dump(&self) -> Option<&ForensicDump> {
        self.sanitizer.as_ref().and_then(|s| s.last_dump())
    }

    /// Takes ownership of the most recent forensic dump.
    pub fn take_forensic_dump(&mut self) -> Option<ForensicDump> {
        self.sanitizer.as_mut().and_then(|s| s.take_last_dump())
    }

    /// The most recent periodic checkpoint (see
    /// [`SanitizerConfig::checkpoint_every`]).
    pub fn sanitizer_checkpoint(&self) -> Option<&SimSnapshot> {
        self.sanitizer.as_ref().and_then(|s| s.last_checkpoint())
    }

    /// Runs the sanitizer's end-of-cycle audit. Called from `clock()`
    /// before the cycle counter advances; panics (after re-attaching
    /// the sanitizer, so the dump survives `catch_unwind`) under
    /// [`SanitizerPolicy::Panic`].
    pub(crate) fn run_sanitizer(&mut self, cycle: u64) {
        let Some(mut san) = self.sanitizer.take() else { return };
        let fatal = san.end_of_cycle(self, cycle);
        self.sanitizer = Some(san);
        if let Some(msg) = fatal {
            panic!("{msg}");
        }
    }

    /// How many of the next `max` idle cycles the attached sanitizer
    /// permits the skip engine to compress (`max` when none is
    /// attached).
    pub(crate) fn sanitizer_skip_allowance(&mut self, cycle: u64, max: u64) -> u64 {
        let Some(san) = self.sanitizer.take() else { return max };
        let allow = san.idle_skip_allowance(self, cycle, max);
        self.sanitizer = Some(san);
        allow
    }

    /// Bulk end-of-cycle bookkeeping for a skipped idle region.
    pub(crate) fn run_sanitizer_idle(&mut self, k: u64) {
        let Some(mut san) = self.sanitizer.take() else { return };
        san.advance_idle(self, k);
        self.sanitizer = Some(san);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_disabled() {
        let c = SanitizerConfig::default();
        assert!(!c.enabled);
        assert_eq!(c.policy, SanitizerPolicy::Report);
        assert!(c.watchdog_cycles > 0);
        assert!(c.trace_ring > 0);
        assert_eq!(c.checkpoint_every, 0);
        assert!(c.dump_dir.is_none());
    }

    #[test]
    fn config_presets_pick_policies() {
        assert!(SanitizerConfig::report().enabled);
        assert_eq!(SanitizerConfig::report().policy, SanitizerPolicy::Report);
        assert_eq!(SanitizerConfig::panicking().policy, SanitizerPolicy::Panic);
        assert_eq!(SanitizerConfig::recovering().policy, SanitizerPolicy::Recover);
    }

    #[test]
    fn violation_kind_names_are_stable() {
        assert_eq!(ViolationKind::TokenOverReturn.name(), "token-over-return");
        assert_eq!(ViolationKind::PacketConservation.name(), "packet-conservation");
        assert_eq!(ViolationKind::StallWatchdog.name(), "stall-watchdog");
        let v = Violation {
            cycle: 7,
            kind: ViolationKind::PhantomResponse,
            detail: "x".into(),
        };
        assert_eq!(v.to_string(), "[phantom-response] cycle 7: x");
    }
}
