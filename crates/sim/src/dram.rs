//! Bank-level DRAM timing: row buffers and busy windows.
//!
//! HMC-Sim's core model is deliberately timing-agnostic (paper §VII),
//! but its structure exposes banks; this module adds an optional
//! row-buffer model on top so users can study open-row locality —
//! part of the "more accurate timing resolution" the paper names as
//! future work. With all latencies at their zero defaults the model
//! degenerates to the paper's pure queue-structural behaviour.

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowPolicy {
    /// Keep the row open after an access (open-page): subsequent
    /// accesses to the same row pay the hit latency, a different row
    /// pays the miss latency.
    #[default]
    OpenPage,
    /// Precharge after every access (closed-page): every access pays
    /// the miss latency, but there is no worst-case conflict penalty.
    ClosedPage,
}

/// Bank timing parameters, all in device cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BankTiming {
    /// Extra busy cycles for an access that hits the open row.
    pub row_hit: u64,
    /// Extra busy cycles for an access that opens a new row
    /// (precharge + activate).
    pub row_miss: u64,
    /// Row-buffer policy.
    pub policy: RowPolicy,
}

/// Periodic DRAM refresh parameters.
///
/// Every `interval` cycles each bank is unavailable for `duration`
/// cycles (tRFC). Banks refresh staggered: bank *k* of *n* begins its
/// window at `k * interval / n`, the usual per-bank refresh rollout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshConfig {
    /// Cycles between refreshes of one bank (tREFI analogue).
    pub interval: u64,
    /// Cycles a refresh blocks the bank (tRFC analogue).
    pub duration: u64,
}

impl RefreshConfig {
    /// True when `bank_index` (of `total_banks` in the device) is in
    /// its refresh window at `cycle`.
    ///
    /// Degenerate parameters are *defined*, not undefined behaviour:
    ///
    /// * `interval == 0` or `duration == 0` never blocks (a zero-period
    ///   or zero-width refresh is "no refresh") — though note that
    ///   [`crate::DeviceConfig::validate`] rejects such configurations
    ///   outright, so they only arise through direct use of this type;
    /// * `total_banks == 0` staggers as if there were one bank (every
    ///   bank shares offset 0) rather than dividing by zero.
    pub fn blocks(&self, cycle: u64, bank_index: u64, total_banks: u64) -> bool {
        if self.interval == 0 || self.duration == 0 {
            return false;
        }
        (cycle + self.interval - self.offset(bank_index, total_banks)) % self.interval
            < self.duration
    }

    /// The stagger offset of `bank_index`: bank *k* of *n* starts its
    /// windows at cycles `k * interval / n (mod interval)`.
    #[inline]
    fn offset(&self, bank_index: u64, total_banks: u64) -> u64 {
        (bank_index * self.interval / total_banks.max(1)) % self.interval
    }

    /// Number of refresh-window *starts* for `bank_index` strictly
    /// before `cycle`.
    #[inline]
    fn starts_before(&self, cycle: u64, bank_index: u64, total_banks: u64) -> u64 {
        let offset = self.offset(bank_index, total_banks);
        if cycle > offset {
            (cycle - 1 - offset) / self.interval + 1
        } else {
            0
        }
    }

    /// True when a refresh window for `bank_index` starts anywhere in
    /// the inclusive cycle range `[from, to]`. This is how the
    /// row-buffer backend decides whether a refresh closed a bank's
    /// open row between two accesses, using only the bank's previous
    /// `busy_until` — no extra per-bank state. Degenerate parameters
    /// follow [`RefreshConfig::blocks`]: a non-refreshing configuration
    /// never starts a window.
    pub fn starts_in(&self, from: u64, to: u64, bank_index: u64, total_banks: u64) -> bool {
        if self.interval == 0 || self.duration == 0 || from > to {
            return false;
        }
        self.starts_before(to.saturating_add(1), bank_index, total_banks)
            > self.starts_before(from, bank_index, total_banks)
    }

    /// The earliest cycle at or after `from` where `bank_index` is not
    /// blocked: `from` itself when outside a window, otherwise the end
    /// of the window in force. (With the validated constraint
    /// `duration < interval` the window end is always unblocked.)
    pub fn next_unblocked(&self, from: u64, bank_index: u64, total_banks: u64) -> u64 {
        if !self.blocks(from, bank_index, total_banks) {
            return from;
        }
        let phase =
            (from + self.interval - self.offset(bank_index, total_banks)) % self.interval;
        from - phase + self.duration
    }
}

/// One DRAM bank's dynamic state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bank {
    busy_until: u64,
    open_row: Option<u64>,
    /// Accesses that hit the open row.
    pub row_hits: u64,
    /// Accesses that required an activate.
    pub row_misses: u64,
}

impl Bank {
    /// True when the bank cannot accept an access at `cycle`.
    #[inline]
    pub fn is_busy(&self, cycle: u64) -> bool {
        self.busy_until > cycle
    }

    /// The first cycle at which the bank is free again (equivalently:
    /// the end of its current busy window, which doubles as the cycle
    /// of its previous access plus that access's latency). The timing
    /// backends use this both as an event horizon and as the left edge
    /// of the "has a refresh started since?" test.
    #[inline]
    pub fn busy_horizon(&self) -> u64 {
        self.busy_until
    }

    /// True when an access to `row` right now would hit the open row
    /// under `timing`'s policy (the classification [`Bank::access`]
    /// applies, exposed so callers can record latency classes without
    /// duplicating the policy logic).
    #[inline]
    pub fn would_hit(&self, row: u64, timing: &BankTiming) -> bool {
        self.open_row == Some(row) && timing.policy == RowPolicy::OpenPage
    }

    /// Forces the open row closed (a refresh precharges the bank).
    #[inline]
    pub(crate) fn close_row(&mut self) {
        self.open_row = None;
    }

    /// The private dynamic state `(busy_until, open_row)` for
    /// checkpoint serialization (the hit/miss counters are public).
    pub(crate) fn dynamic_state(&self) -> (u64, Option<u64>) {
        (self.busy_until, self.open_row)
    }

    /// Rebuilds a bank from checkpointed state.
    pub(crate) fn from_parts(
        busy_until: u64,
        open_row: Option<u64>,
        row_hits: u64,
        row_misses: u64,
    ) -> Self {
        Bank { busy_until, open_row, row_hits, row_misses }
    }

    /// Performs an access to `row` at `cycle`, updating the row
    /// buffer and the busy window, and returns the access latency in
    /// cycles.
    pub fn access(&mut self, cycle: u64, row: u64, timing: &BankTiming) -> u64 {
        debug_assert!(!self.is_busy(cycle), "caller checks is_busy first");
        let hit = self.would_hit(row, timing);
        let latency = if hit {
            self.row_hits += 1;
            timing.row_hit
        } else {
            self.row_misses += 1;
            timing.row_miss
        };
        self.open_row = match timing.policy {
            RowPolicy::OpenPage => Some(row),
            RowPolicy::ClosedPage => None,
        };
        self.busy_until = cycle + latency;
        latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(hit: u64, miss: u64, policy: RowPolicy) -> BankTiming {
        BankTiming { row_hit: hit, row_miss: miss, policy }
    }

    #[test]
    fn zero_timing_is_the_paper_model() {
        let mut bank = Bank::default();
        let t = BankTiming::default();
        assert_eq!(bank.access(0, 5, &t), 0);
        assert!(!bank.is_busy(0), "zero latency never blocks");
        assert_eq!(bank.access(0, 9, &t), 0);
    }

    #[test]
    fn open_page_hits_and_misses() {
        let mut bank = Bank::default();
        let t = timing(2, 10, RowPolicy::OpenPage);
        assert_eq!(bank.access(0, 5, &t), 10, "first access activates");
        assert!(bank.is_busy(9));
        assert!(!bank.is_busy(10));
        assert_eq!(bank.access(10, 5, &t), 2, "same row hits");
        assert_eq!(bank.access(20, 6, &t), 10, "row change misses");
        assert_eq!(bank.row_hits, 1);
        assert_eq!(bank.row_misses, 2);
    }

    #[test]
    fn closed_page_always_misses() {
        let mut bank = Bank::default();
        let t = timing(2, 10, RowPolicy::ClosedPage);
        assert_eq!(bank.access(0, 5, &t), 10);
        assert_eq!(bank.access(20, 5, &t), 10, "row not kept open");
        assert_eq!(bank.row_hits, 0);
        assert_eq!(bank.row_misses, 2);
    }

    #[test]
    fn refresh_windows_are_periodic_and_staggered() {
        let r = RefreshConfig { interval: 100, duration: 10 };
        // Bank 0 of 4 refreshes at cycles [0,10), [100,110), ...
        assert!(r.blocks(0, 0, 4));
        assert!(r.blocks(9, 0, 4));
        assert!(!r.blocks(10, 0, 4));
        assert!(r.blocks(105, 0, 4));
        // Bank 1 of 4 is offset by 25 cycles.
        assert!(!r.blocks(0, 1, 4));
        assert!(r.blocks(25, 1, 4));
        assert!(r.blocks(34, 1, 4));
        assert!(!r.blocks(35, 1, 4));
        // Degenerate configs never block.
        assert!(!RefreshConfig { interval: 0, duration: 5 }.blocks(3, 0, 4));
        assert!(!RefreshConfig { interval: 100, duration: 0 }.blocks(0, 0, 4));
    }

    /// Satellite: refresh-window *edge* alignment. The window of bank
    /// `k` of `n` covers exactly `[offset + j*interval,
    /// offset + j*interval + duration)` — closed on the left, open on
    /// the right — for `offset = k * interval / n`.
    #[test]
    fn refresh_window_edges_are_half_open() {
        let r = RefreshConfig { interval: 100, duration: 10 };
        for (bank, offset) in [(0u64, 0u64), (1, 25), (2, 50), (3, 75)] {
            for period in [0u64, 1, 7] {
                let start = offset + period * 100;
                if start > 0 {
                    assert!(!r.blocks(start - 1, bank, 4), "cycle before the window is free");
                }
                assert!(r.blocks(start, bank, 4), "left edge is inside the window");
                assert!(r.blocks(start + 9, bank, 4), "last covered cycle is inside");
                assert!(!r.blocks(start + 10, bank, 4), "right edge is outside (half-open)");
            }
        }
        // A one-cycle window blocks exactly one cycle.
        let narrow = RefreshConfig { interval: 64, duration: 1 };
        assert!(narrow.blocks(64, 0, 4));
        assert!(!narrow.blocks(63, 0, 4));
        assert!(!narrow.blocks(65, 0, 4));
    }

    #[test]
    fn starts_in_counts_window_starts_on_an_inclusive_range() {
        let r = RefreshConfig { interval: 100, duration: 10 };
        // Bank 1 of 4: windows start at 25, 125, 225, ...
        assert!(r.starts_in(25, 25, 1, 4), "left edge of the range is inclusive");
        assert!(r.starts_in(0, 25, 1, 4));
        assert!(r.starts_in(20, 30, 1, 4));
        assert!(!r.starts_in(26, 124, 1, 4), "no start strictly between windows");
        assert!(r.starts_in(26, 125, 1, 4), "right edge of the range is inclusive");
        assert!(r.starts_in(0, 1_000, 1, 4), "many windows count as at least one");
        assert!(!r.starts_in(30, 20, 1, 4), "empty range has no starts");
        // Bank 0's window starts at cycle 0 itself.
        assert!(r.starts_in(0, 0, 0, 4));
        assert!(!r.starts_in(1, 99, 0, 4));
        // Degenerate configs never start a window.
        assert!(!RefreshConfig { interval: 0, duration: 5 }.starts_in(0, 1_000, 0, 4));
        assert!(!RefreshConfig { interval: 100, duration: 0 }.starts_in(0, 1_000, 0, 4));
    }

    #[test]
    fn next_unblocked_lands_exactly_on_the_window_end() {
        let r = RefreshConfig { interval: 100, duration: 10 };
        assert_eq!(r.next_unblocked(0, 0, 4), 10, "blocked at the left edge");
        assert_eq!(r.next_unblocked(9, 0, 4), 10, "blocked on the last covered cycle");
        assert_eq!(r.next_unblocked(10, 0, 4), 10, "already free: unchanged");
        assert_eq!(r.next_unblocked(55, 0, 4), 55);
        assert_eq!(r.next_unblocked(103, 0, 4), 110, "second period's window");
        assert_eq!(r.next_unblocked(27, 1, 4), 35, "staggered bank offset respected");
    }

    /// Satellite: the `total_banks == 0` degenerate stagger is defined
    /// (every bank behaves like bank 0 of 1) instead of dividing by
    /// zero.
    #[test]
    fn zero_total_banks_stagger_is_defined() {
        let r = RefreshConfig { interval: 100, duration: 10 };
        for bank in [0u64, 1, 3, 1_000] {
            assert_eq!(r.blocks(5, bank, 0), r.blocks(5, 0, 1), "bank {bank}");
            assert!(r.blocks(5, bank, 0), "all banks share offset 0");
            assert!(!r.blocks(15, bank, 0));
            assert!(r.starts_in(0, 0, bank, 0));
            assert_eq!(r.next_unblocked(5, bank, 0), 10);
        }
    }

    #[test]
    fn busy_window_tracks_latency() {
        let mut bank = Bank::default();
        let t = timing(0, 4, RowPolicy::OpenPage);
        bank.access(100, 1, &t);
        assert!(bank.is_busy(101));
        assert!(bank.is_busy(103));
        assert!(!bank.is_busy(104));
    }
}
