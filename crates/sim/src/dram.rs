//! Bank-level DRAM timing: row buffers and busy windows.
//!
//! HMC-Sim's core model is deliberately timing-agnostic (paper §VII),
//! but its structure exposes banks; this module adds an optional
//! row-buffer model on top so users can study open-row locality —
//! part of the "more accurate timing resolution" the paper names as
//! future work. With all latencies at their zero defaults the model
//! degenerates to the paper's pure queue-structural behaviour.

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowPolicy {
    /// Keep the row open after an access (open-page): subsequent
    /// accesses to the same row pay the hit latency, a different row
    /// pays the miss latency.
    #[default]
    OpenPage,
    /// Precharge after every access (closed-page): every access pays
    /// the miss latency, but there is no worst-case conflict penalty.
    ClosedPage,
}

/// Bank timing parameters, all in device cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BankTiming {
    /// Extra busy cycles for an access that hits the open row.
    pub row_hit: u64,
    /// Extra busy cycles for an access that opens a new row
    /// (precharge + activate).
    pub row_miss: u64,
    /// Row-buffer policy.
    pub policy: RowPolicy,
}

/// Periodic DRAM refresh parameters.
///
/// Every `interval` cycles each bank is unavailable for `duration`
/// cycles (tRFC). Banks refresh staggered: bank *k* of *n* begins its
/// window at `k * interval / n`, the usual per-bank refresh rollout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshConfig {
    /// Cycles between refreshes of one bank (tREFI analogue).
    pub interval: u64,
    /// Cycles a refresh blocks the bank (tRFC analogue).
    pub duration: u64,
}

impl RefreshConfig {
    /// True when `bank_index` (of `total_banks` in the device) is in
    /// its refresh window at `cycle`.
    pub fn blocks(&self, cycle: u64, bank_index: u64, total_banks: u64) -> bool {
        if self.interval == 0 || self.duration == 0 {
            return false;
        }
        let offset = bank_index * self.interval / total_banks.max(1);
        (cycle + self.interval - offset % self.interval) % self.interval < self.duration
    }
}

/// One DRAM bank's dynamic state.
#[derive(Debug, Clone, Default)]
pub struct Bank {
    busy_until: u64,
    open_row: Option<u64>,
    /// Accesses that hit the open row.
    pub row_hits: u64,
    /// Accesses that required an activate.
    pub row_misses: u64,
}

impl Bank {
    /// True when the bank cannot accept an access at `cycle`.
    #[inline]
    pub fn is_busy(&self, cycle: u64) -> bool {
        self.busy_until > cycle
    }

    /// The private dynamic state `(busy_until, open_row)` for
    /// checkpoint serialization (the hit/miss counters are public).
    pub(crate) fn dynamic_state(&self) -> (u64, Option<u64>) {
        (self.busy_until, self.open_row)
    }

    /// Rebuilds a bank from checkpointed state.
    pub(crate) fn from_parts(
        busy_until: u64,
        open_row: Option<u64>,
        row_hits: u64,
        row_misses: u64,
    ) -> Self {
        Bank { busy_until, open_row, row_hits, row_misses }
    }

    /// Performs an access to `row` at `cycle`, updating the row
    /// buffer and the busy window, and returns the access latency in
    /// cycles.
    pub fn access(&mut self, cycle: u64, row: u64, timing: &BankTiming) -> u64 {
        debug_assert!(!self.is_busy(cycle), "caller checks is_busy first");
        let hit = self.open_row == Some(row) && timing.policy == RowPolicy::OpenPage;
        let latency = if hit {
            self.row_hits += 1;
            timing.row_hit
        } else {
            self.row_misses += 1;
            timing.row_miss
        };
        self.open_row = match timing.policy {
            RowPolicy::OpenPage => Some(row),
            RowPolicy::ClosedPage => None,
        };
        self.busy_until = cycle + latency;
        latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(hit: u64, miss: u64, policy: RowPolicy) -> BankTiming {
        BankTiming { row_hit: hit, row_miss: miss, policy }
    }

    #[test]
    fn zero_timing_is_the_paper_model() {
        let mut bank = Bank::default();
        let t = BankTiming::default();
        assert_eq!(bank.access(0, 5, &t), 0);
        assert!(!bank.is_busy(0), "zero latency never blocks");
        assert_eq!(bank.access(0, 9, &t), 0);
    }

    #[test]
    fn open_page_hits_and_misses() {
        let mut bank = Bank::default();
        let t = timing(2, 10, RowPolicy::OpenPage);
        assert_eq!(bank.access(0, 5, &t), 10, "first access activates");
        assert!(bank.is_busy(9));
        assert!(!bank.is_busy(10));
        assert_eq!(bank.access(10, 5, &t), 2, "same row hits");
        assert_eq!(bank.access(20, 6, &t), 10, "row change misses");
        assert_eq!(bank.row_hits, 1);
        assert_eq!(bank.row_misses, 2);
    }

    #[test]
    fn closed_page_always_misses() {
        let mut bank = Bank::default();
        let t = timing(2, 10, RowPolicy::ClosedPage);
        assert_eq!(bank.access(0, 5, &t), 10);
        assert_eq!(bank.access(20, 5, &t), 10, "row not kept open");
        assert_eq!(bank.row_hits, 0);
        assert_eq!(bank.row_misses, 2);
    }

    #[test]
    fn refresh_windows_are_periodic_and_staggered() {
        let r = RefreshConfig { interval: 100, duration: 10 };
        // Bank 0 of 4 refreshes at cycles [0,10), [100,110), ...
        assert!(r.blocks(0, 0, 4));
        assert!(r.blocks(9, 0, 4));
        assert!(!r.blocks(10, 0, 4));
        assert!(r.blocks(105, 0, 4));
        // Bank 1 of 4 is offset by 25 cycles.
        assert!(!r.blocks(0, 1, 4));
        assert!(r.blocks(25, 1, 4));
        assert!(r.blocks(34, 1, 4));
        assert!(!r.blocks(35, 1, 4));
        // Degenerate configs never block.
        assert!(!RefreshConfig { interval: 0, duration: 5 }.blocks(3, 0, 4));
        assert!(!RefreshConfig { interval: 100, duration: 0 }.blocks(0, 0, 4));
    }

    #[test]
    fn busy_window_tracks_latency() {
        let mut bank = Bank::default();
        let t = timing(0, 4, RowPolicy::OpenPage);
        bank.access(100, 1, &t);
        assert!(bank.is_busy(101));
        assert!(bank.is_busy(103));
        assert!(!bank.is_busy(104));
    }
}
