//! Durable, crash-safe checkpoint store.
//!
//! A [`CheckpointStore`] owns a directory of generation-numbered
//! checkpoint files (`ckpt-<generation>.json`). Each commit follows
//! the classic atomic protocol:
//!
//! 1. write the full file to `ckpt-<g>.json.tmp`,
//! 2. `fsync` the file,
//! 3. `rename` it to its final name (atomic on POSIX),
//! 4. `fsync` the directory so the rename itself is durable.
//!
//! A crash at any point leaves either the previous generation intact
//! (steps 1–3 incomplete: at worst a stale `.tmp` remains) or the new
//! generation complete. There is no window in which a reader can see
//! a half-written final file.
//!
//! Every file carries a one-line JSON header followed by the body:
//!
//! ```text
//! {"magic":"hmc-ckpt","version":1,"cycle":C,"fingerprint":F,
//!  "body_len":N,"body_crc32":X}\n<body bytes...>
//! ```
//!
//! `fingerprint` is the simulator's
//! [`state_fingerprint`](crate::HmcSim::state_fingerprint) at commit
//! time; recovery code re-derives the fingerprint from the restored
//! state and refuses to resume on a mismatch. `body_crc32` is the
//! CRC-32K of the body bytes, so torn or bit-flipped files are caught
//! before any parse is attempted.
//!
//! [`CheckpointStore::open`] validates **every** generation present.
//! Anything invalid — truncated, CRC mismatch, bad magic, unsupported
//! version, stale `.tmp` — is *quarantined*: renamed to `<name>.corrupt`
//! and reported loudly (stderr and the returned [`OpenReport`]), never
//! silently used or deleted. Recovery proceeds from the newest
//! generation that validates.

use crate::jsonv::{obj, Json, JsonError, ObjReader};
use hmc_types::crc32k;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Magic string identifying a checkpoint file header.
pub const CKPT_MAGIC: &str = "hmc-ckpt";

/// Checkpoint container-format version (independent of the snapshot
/// body's own `schema_version`).
pub const CKPT_VERSION: u64 = 1;

fn with_path(e: io::Error, action: &str, path: &Path) -> io::Error {
    io::Error::new(e.kind(), format!("{action} {}: {e}", path.display()))
}

/// Writes `bytes` to `path` atomically: tmp file → fsync → rename →
/// directory fsync. Either the old content (or absence) survives or
/// the new content is complete — a crash can never leave a torn file
/// at `path`. Parent directories are created as needed and every error
/// carries the offending path in its message.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => {
            fs::create_dir_all(p).map_err(|e| with_path(e, "create directory", p))?;
            Some(p)
        }
        _ => None,
    };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut f = fs::File::create(&tmp).map_err(|e| with_path(e, "create", &tmp))?;
    f.write_all(bytes).map_err(|e| with_path(e, "write", &tmp))?;
    f.sync_all().map_err(|e| with_path(e, "fsync", &tmp))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| with_path(e, "rename into place", path))?;
    #[cfg(unix)]
    if let Some(parent) = parent {
        fs::File::open(parent)
            .and_then(|d| d.sync_all())
            .map_err(|e| with_path(e, "fsync directory", parent))?;
    }
    #[cfg(not(unix))]
    let _ = parent;
    Ok(())
}

/// One validated checkpoint, as returned by [`CheckpointStore::open`].
#[derive(Debug, Clone)]
pub struct CheckpointRecord {
    /// Generation number (monotonically increasing per store).
    pub generation: u64,
    /// Simulation cycle recorded in the header.
    pub cycle: u64,
    /// State fingerprint recorded in the header at commit time.
    pub fingerprint: u64,
    /// The checkpoint body (CRC-verified).
    pub body: Vec<u8>,
}

/// A file [`CheckpointStore::open`] refused to use, renamed to
/// `<name>.corrupt` in place.
#[derive(Debug, Clone)]
pub struct QuarantinedFile {
    /// The file's post-quarantine path (`...corrupt`).
    pub path: PathBuf,
    /// Why it was rejected.
    pub reason: String,
}

/// The result of opening (and validating) a checkpoint directory.
#[derive(Debug)]
pub struct OpenReport {
    /// The opened store, ready for [`CheckpointStore::commit`].
    pub store: CheckpointStore,
    /// The newest checkpoint that validated, if any.
    pub latest: Option<CheckpointRecord>,
    /// Every file that failed validation, already quarantined.
    pub quarantined: Vec<QuarantinedFile>,
}

/// A directory of generation-numbered, CRC-protected checkpoint files
/// with bounded retention. See the module docs for the commit
/// protocol and recovery rules.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    retain: usize,
    next_gen: u64,
    /// Good generations currently on disk, ascending.
    gens: Vec<u64>,
}

fn header_json(cycle: u64, fingerprint: u64, body: &[u8]) -> String {
    let mut line = obj(vec![
        ("magic", Json::Str(CKPT_MAGIC.into())),
        ("version", Json::Int(CKPT_VERSION as i128)),
        ("cycle", Json::Int(cycle as i128)),
        ("fingerprint", Json::Int(fingerprint as i128)),
        ("body_len", Json::Int(body.len() as i128)),
        ("body_crc32", Json::Int(crc32k(body) as i128)),
    ])
    .render();
    line.push('\n');
    line
}

struct Header {
    cycle: u64,
    fingerprint: u64,
    body_len: usize,
    body_crc32: u32,
}

fn parse_header(line: &str) -> Result<Header, JsonError> {
    let v = Json::parse(line)?;
    let mut r = ObjReader::new("checkpoint header", &v)?;
    let magic = r.str("magic")?;
    if magic != CKPT_MAGIC {
        return Err(JsonError { message: format!("bad magic `{magic}`") });
    }
    let version = r.u64("version")?;
    if version != CKPT_VERSION {
        return Err(JsonError {
            message: format!("unsupported checkpoint version {version} (expected {CKPT_VERSION})"),
        });
    }
    let header = Header {
        cycle: r.u64("cycle")?,
        fingerprint: r.u64("fingerprint")?,
        body_len: r.usize("body_len")?,
        body_crc32: r.u32("body_crc32")?,
    };
    r.finish()?;
    Ok(header)
}

/// Parses `ckpt-<gen>.json` out of a file name.
fn generation_of(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?.strip_suffix(".json")?.parse().ok()
}

fn validate_file(path: &Path) -> Result<(Header, Vec<u8>), String> {
    let data = fs::read(path).map_err(|e| format!("unreadable: {e}"))?;
    let nl = data
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| "truncated: no header line".to_string())?;
    let line = std::str::from_utf8(&data[..nl]).map_err(|_| "header is not UTF-8".to_string())?;
    let header = parse_header(line).map_err(|e| format!("bad header: {e}"))?;
    let body = &data[nl + 1..];
    if body.len() != header.body_len {
        return Err(format!(
            "truncated body: header says {} bytes, file holds {}",
            header.body_len,
            body.len()
        ));
    }
    let crc = crc32k(body);
    if crc != header.body_crc32 {
        return Err(format!(
            "body CRC mismatch: header says {:#010x}, body hashes to {crc:#010x}",
            header.body_crc32
        ));
    }
    Ok((header, body.to_vec()))
}

fn quarantine(path: &Path, reason: &str) -> QuarantinedFile {
    let mut target = path.as_os_str().to_owned();
    target.push(".corrupt");
    let target = PathBuf::from(target);
    let final_path = match fs::rename(path, &target) {
        Ok(()) => target,
        // Rename failure must not abort recovery; report the original
        // path and keep going.
        Err(_) => path.to_path_buf(),
    };
    eprintln!(
        "hmc-ckpt: QUARANTINED {}: {reason} (kept as {})",
        path.display(),
        final_path.display()
    );
    QuarantinedFile { path: final_path, reason: reason.to_string() }
}

impl CheckpointStore {
    /// Opens (creating if absent) the checkpoint directory `dir`,
    /// validating every generation present. Invalid files — torn,
    /// truncated, bit-flipped, wrong version, stale `.tmp` from a
    /// kill-before-rename — are quarantined as `.corrupt`, loudly.
    /// `retain` bounds how many good generations [`Self::commit`]
    /// keeps (minimum 1).
    pub fn open(dir: impl Into<PathBuf>, retain: usize) -> io::Result<OpenReport> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| with_path(e, "create directory", &dir))?;
        let mut quarantined = Vec::new();
        let mut good: Vec<(u64, Header, Vec<u8>)> = Vec::new();
        let mut max_seen = 0u64;
        let entries = fs::read_dir(&dir).map_err(|e| with_path(e, "read directory", &dir))?;
        for entry in entries {
            let entry = entry.map_err(|e| with_path(e, "read directory", &dir))?;
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()).map(String::from) else {
                continue;
            };
            if name.ends_with(".corrupt") {
                continue; // already quarantined by an earlier open
            }
            if name.ends_with(".tmp") {
                quarantined
                    .push(quarantine(&path, "stale temporary file (crash before rename)"));
                continue;
            }
            let Some(gen) = generation_of(&name) else {
                continue; // foreign file (manifest, journal, ...)
            };
            max_seen = max_seen.max(gen);
            match validate_file(&path) {
                Ok((header, body)) => good.push((gen, header, body)),
                Err(reason) => quarantined.push(quarantine(&path, &reason)),
            }
        }
        good.sort_unstable_by_key(|(gen, _, _)| *gen);
        let gens: Vec<u64> = good.iter().map(|(gen, _, _)| *gen).collect();
        let latest = good.pop().map(|(generation, header, body)| CheckpointRecord {
            generation,
            cycle: header.cycle,
            fingerprint: header.fingerprint,
            body,
        });
        let store = CheckpointStore { dir, retain: retain.max(1), next_gen: max_seen + 1, gens };
        Ok(OpenReport { store, latest, quarantined })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Good generations currently on disk, ascending.
    pub fn generations(&self) -> &[u64] {
        &self.gens
    }

    /// The path of generation `gen`.
    pub fn path_of(&self, gen: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{gen}.json"))
    }

    /// Commits `body` as the next generation under the atomic
    /// protocol, then prunes generations beyond the retention bound
    /// (oldest first). Returns the committed generation number.
    pub fn commit(&mut self, cycle: u64, fingerprint: u64, body: &[u8]) -> io::Result<u64> {
        let gen = self.next_gen;
        let mut data = header_json(cycle, fingerprint, body).into_bytes();
        data.extend_from_slice(body);
        atomic_write(&self.path_of(gen), &data)?;
        self.next_gen += 1;
        self.gens.push(gen);
        while self.gens.len() > self.retain {
            let old = self.gens.remove(0);
            let path = self.path_of(old);
            // Retention pruning is best-effort: a failed unlink leaves
            // an extra old generation behind, which open() will simply
            // validate again.
            let _ = fs::remove_file(&path);
        }
        Ok(gen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hmc-ckpt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn commit_and_reopen_returns_latest() {
        let dir = tmpdir("basic");
        let mut store = CheckpointStore::open(&dir, 3).unwrap().store;
        store.commit(10, 111, b"alpha").unwrap();
        store.commit(20, 222, b"beta").unwrap();
        let report = CheckpointStore::open(&dir, 3).unwrap();
        assert!(report.quarantined.is_empty());
        let latest = report.latest.unwrap();
        assert_eq!(latest.generation, 2);
        assert_eq!(latest.cycle, 20);
        assert_eq!(latest.fingerprint, 222);
        assert_eq!(latest.body, b"beta");
        assert_eq!(report.store.generations(), &[1, 2]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_prunes_oldest() {
        let dir = tmpdir("retain");
        let mut store = CheckpointStore::open(&dir, 2).unwrap().store;
        for i in 1..=5u64 {
            store.commit(i * 10, i, format!("body-{i}").as_bytes()).unwrap();
        }
        assert_eq!(store.generations(), &[4, 5]);
        assert!(!store.path_of(1).exists());
        assert!(!store.path_of(3).exists());
        assert!(store.path_of(4).exists());
        let report = CheckpointStore::open(&dir, 2).unwrap();
        assert_eq!(report.latest.unwrap().generation, 5);
        // Generation numbers never restart, even after pruning.
        assert_eq!(report.store.next_gen, 6);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_replaces_content_and_cleans_tmp() {
        let dir = tmpdir("atomic");
        let path = dir.join("file.json");
        atomic_write(&path, b"one").unwrap();
        atomic_write(&path, b"two").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"two");
        assert!(!dir.join("file.json.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_errors_carry_the_path() {
        let path = Path::new("/proc/definitely-not-writable/x.json");
        let err = atomic_write(path, b"x").unwrap_err();
        assert!(err.to_string().contains("definitely-not-writable"), "{err}");
    }

    #[test]
    fn foreign_files_are_ignored() {
        let dir = tmpdir("foreign");
        fs::write(dir.join("manifest.json"), b"{}").unwrap();
        let mut store = CheckpointStore::open(&dir, 2).unwrap().store;
        store.commit(1, 1, b"x").unwrap();
        let report = CheckpointStore::open(&dir, 2).unwrap();
        assert!(report.quarantined.is_empty(), "manifest.json must not be quarantined");
        assert_eq!(report.latest.unwrap().generation, 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
