//! Device and simulation configuration.
//!
//! The two presets used throughout the paper's evaluation (§V-B) are
//! [`DeviceConfig::gen2_4link_4gb`] and [`DeviceConfig::gen2_8link_8gb`],
//! both with a 64-byte maximum block size, 64-slot vault request
//! queues and 128-slot crossbar queues.

use crate::dram::{BankTiming, RefreshConfig};
use crate::fault::FaultPlan;
use crate::link::LinkConfig;
use crate::timing::TimingSelect;
use hmc_types::{CmdKind, HmcError, HmcRqst};

/// Crossbar link-service arbitration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Arbitration {
    /// Serve links in fixed index order each cycle (HMC-Sim's simple
    /// loop; lower-numbered links win ties).
    #[default]
    FixedPriority,
    /// Rotate the starting link each cycle so tie-breaking is fair.
    RoundRobin,
}

/// Which HMC specification revision the device implements.
///
/// HMC-Sim 1.0 modeled the 1.0 specification (reads/writes up to 128
/// bytes plus mode and flow commands); the 2.0 release adds the Gen2
/// command space — 256-byte transfers, the atomic memory operations
/// and the CMC slots (paper §III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpecRevision {
    /// HMC specification 1.0.
    Gen1,
    /// HMC specification 2.0/2.1 (the paper's target).
    #[default]
    Gen2,
}

impl SpecRevision {
    /// True when a device of this revision executes `cmd`.
    pub fn supports(self, cmd: HmcRqst) -> bool {
        match self {
            SpecRevision::Gen2 => true,
            SpecRevision::Gen1 => match cmd.fixed_info() {
                Some(info) => match info.kind {
                    CmdKind::Flow | CmdKind::ModeRead | CmdKind::ModeWrite => true,
                    CmdKind::Read | CmdKind::Write | CmdKind::PostedWrite => {
                        info.data_bytes <= 128
                    }
                    CmdKind::Atomic | CmdKind::PostedAtomic | CmdKind::Cmc => false,
                },
                None => false, // CMC requires Gen2
            },
        }
    }
}

/// Static configuration of one HMC device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceConfig {
    /// Number of host/chain links (2, 4 or 8).
    pub links: usize,
    /// Device capacity in bytes (4 or 8 GiB for Gen2 parts).
    pub capacity: u64,
    /// Number of quads (link-local vault groups). Gen2 devices have 4.
    pub quads: usize,
    /// Vaults per quad (Gen2: 8, for 32 vaults total).
    pub vaults_per_quad: usize,
    /// DRAM banks per vault (16 for 4 GB parts, 32 for 8 GB parts).
    pub banks_per_vault: usize,
    /// Maximum block size in bytes (32/64/128/256); sets the address
    /// interleave granularity.
    pub block_size: usize,
    /// Vault request-queue depth in slots (paper experiments: 64).
    pub vault_queue_depth: usize,
    /// Crossbar queue depth in slots per link (paper experiments: 128).
    pub xbar_queue_depth: usize,
    /// Extra cycles a bank stays busy after servicing a request
    /// (0 = pure queue-structural model, as the paper uses).
    pub bank_latency: u64,
    /// Row-buffer timing (all-zero by default, degenerating to the
    /// paper's untimed bank model).
    pub bank_timing: BankTiming,
    /// Packets each link moves per stage per cycle (link bandwidth in
    /// the packet-rate abstraction).
    pub link_bandwidth: usize,
    /// Requests each vault controller retires per cycle.
    pub vault_bandwidth: usize,
    /// Cycles a packet spends crossing to a chained neighbour device.
    pub hop_latency: u64,
    /// Link-layer protocol configuration (tokens / retry), applied to
    /// every link of the device. Inert by default.
    pub link_config: LinkConfig,
    /// The HMC specification revision the device implements.
    pub revision: SpecRevision,
    /// Crossbar arbitration among links.
    pub arbitration: Arbitration,
    /// Extra cycles a request pays when its target vault lies in a
    /// different quad than its entry link's local quad (link *i* is
    /// local to quad `i % quads`). 0 = uniform crossbar (the paper's
    /// model).
    pub remote_quad_penalty: u64,
    /// Optional DRAM refresh model (None = no refresh, the paper's
    /// timing-agnostic configuration).
    pub refresh: Option<RefreshConfig>,
    /// Seeded fault-injection plan ([`FaultPlan::none`] by default —
    /// guaranteed zero perturbation when empty).
    pub fault: FaultPlan,
}

impl DeviceConfig {
    /// The paper's 4Link-4GB evaluation configuration: 4 links, 4 GiB,
    /// 32 vaults, 16 banks/vault, 64-byte blocks, 64-slot vault
    /// queues, 128-slot crossbar queues.
    pub fn gen2_4link_4gb() -> Self {
        DeviceConfig {
            links: 4,
            capacity: 4 << 30,
            quads: 4,
            vaults_per_quad: 8,
            banks_per_vault: 16,
            block_size: 64,
            vault_queue_depth: 64,
            xbar_queue_depth: 128,
            bank_latency: 0,
            bank_timing: BankTiming::default(),
            link_bandwidth: 1,
            vault_bandwidth: 1,
            hop_latency: 1,
            link_config: LinkConfig::default(),
            revision: SpecRevision::Gen2,
            arbitration: Arbitration::FixedPriority,
            remote_quad_penalty: 0,
            refresh: None,
            fault: FaultPlan::none(),
        }
    }

    /// The paper's 8Link-8GB evaluation configuration: 8 links, 8 GiB,
    /// 32 vaults, 32 banks/vault; queue depths as above.
    pub fn gen2_8link_8gb() -> Self {
        DeviceConfig {
            links: 8,
            capacity: 8 << 30,
            banks_per_vault: 32,
            ..Self::gen2_4link_4gb()
        }
    }

    /// A small 2-link development part, useful for the link-count
    /// ablation sweeps.
    pub fn gen2_2link_4gb() -> Self {
        DeviceConfig { links: 2, ..Self::gen2_4link_4gb() }
    }

    /// An HMC 1.0 part (HMC-Sim 1.0's model): 4 links, 2 GiB, no
    /// Gen2 atomics, 256-byte transfers or CMC slots.
    pub fn gen1_4link_2gb() -> Self {
        DeviceConfig {
            capacity: 2 << 30,
            banks_per_vault: 8,
            revision: SpecRevision::Gen1,
            ..Self::gen2_4link_4gb()
        }
    }

    /// Total vault count.
    #[inline]
    pub fn total_vaults(&self) -> usize {
        self.quads * self.vaults_per_quad
    }

    /// Validates structural invariants (power-of-two geometry, legal
    /// block size, non-zero queues).
    pub fn validate(&self) -> Result<(), HmcError> {
        let bad = |why: String| Err(HmcError::MalformedPacket(why));
        if !matches!(self.links, 2 | 4 | 8) {
            return bad(format!("links must be 2, 4 or 8, got {}", self.links));
        }
        if !matches!(self.block_size, 32 | 64 | 128 | 256) {
            return bad(format!("block size must be 32/64/128/256, got {}", self.block_size));
        }
        for (name, v) in [
            ("quads", self.quads),
            ("vaults_per_quad", self.vaults_per_quad),
            ("banks_per_vault", self.banks_per_vault),
            ("vault_queue_depth", self.vault_queue_depth),
            ("xbar_queue_depth", self.xbar_queue_depth),
            ("link_bandwidth", self.link_bandwidth),
            ("vault_bandwidth", self.vault_bandwidth),
        ] {
            if v == 0 {
                return bad(format!("{name} must be nonzero"));
            }
        }
        if !self.total_vaults().is_power_of_two() {
            return bad(format!("vault count {} must be a power of two", self.total_vaults()));
        }
        if !self.banks_per_vault.is_power_of_two() {
            return bad(format!("banks/vault {} must be a power of two", self.banks_per_vault));
        }
        if self.capacity == 0 || !self.capacity.is_power_of_two() {
            return bad(format!("capacity {} must be a nonzero power of two", self.capacity));
        }
        if self.capacity < (self.total_vaults() * self.banks_per_vault * self.block_size) as u64 {
            return bad("capacity smaller than one block per bank".into());
        }
        if let Some(r) = &self.refresh {
            // A configured refresh model must actually refresh: a zero
            // interval or zero duration silently degenerates to "never
            // blocks" (see `RefreshConfig::blocks`), and a duration at
            // or above the interval leaves no service window at all.
            // `refresh: None` is the way to spell "no refresh".
            if r.interval == 0 || r.duration == 0 {
                return bad(format!(
                    "refresh interval and duration must be nonzero \
                     (got interval={}, duration={}); use refresh: None to disable",
                    r.interval, r.duration
                ));
            }
            if r.duration >= r.interval {
                return bad(format!(
                    "refresh duration {} must be shorter than interval {} \
                     or banks can never serve",
                    r.duration, r.interval
                ));
            }
        }
        self.fault.validate(self.links)?;
        Ok(())
    }

    /// A short human-readable name, e.g. `4Link-4GB`.
    pub fn label(&self) -> String {
        format!("{}Link-{}GB", self.links, self.capacity >> 30)
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::gen2_4link_4gb()
    }
}

/// How the tick loop advances the vault stage of each cycle.
///
/// `Sequential` is the reference semantics; `Parallel` shards the
/// vault-execution stage of [`crate::HmcSim::clock`] across a fixed
/// worker pool using a bound-then-commit discipline that is
/// bit-identical to `Sequential` for every cycle (the differential
/// determinism suite pins this). See DESIGN.md "Execution model".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Advance every component in fixed order on the calling thread
    /// (the reference semantics; the default).
    #[default]
    Sequential,
    /// Shard the vault-execution stage across `threads` lanes (the
    /// calling thread plus `threads - 1` pool workers). `threads == 1`
    /// exercises the plan/commit machinery without spawning workers.
    Parallel {
        /// Total execution lanes (1..=64).
        threads: usize,
    },
}

/// Environment variable consulted by [`ExecMode::resolve_env`]; set to
/// an integer > 1 to opt unconfigured simulations into parallel mode.
pub const EXEC_THREADS_ENV: &str = "HMCSIM_THREADS";

impl ExecMode {
    /// Upper bound on worker lanes (far beyond any useful shard count —
    /// there are at most 8 devices × 32 vaults to spread).
    pub const MAX_THREADS: usize = 64;

    /// Parses an explicit `HMCSIM_THREADS` value. `"1"` resolves to
    /// [`ExecMode::Sequential`]; `"2"..="64"` to [`ExecMode::Parallel`].
    /// Anything else — empty, non-numeric, zero, out of range, or
    /// overflowing — is rejected with a descriptive error rather than
    /// silently falling back: a typo in a CI matrix must fail the job,
    /// not quietly run the wrong engine.
    pub fn parse_env_value(raw: &str) -> Result<Self, HmcError> {
        let bad = |why: String| Err(HmcError::MalformedPacket(why));
        let t = raw.trim();
        if t.is_empty() {
            return bad(format!("{EXEC_THREADS_ENV} is set but empty (expected 1..={})", Self::MAX_THREADS));
        }
        match t.parse::<u64>() {
            Ok(0) => bad(format!("{EXEC_THREADS_ENV} must be >= 1, got 0")),
            Ok(n) if n > Self::MAX_THREADS as u64 => bad(format!(
                "{EXEC_THREADS_ENV}={n} exceeds the maximum of {}",
                Self::MAX_THREADS
            )),
            Ok(1) => Ok(ExecMode::Sequential),
            Ok(n) => Ok(ExecMode::Parallel { threads: n as usize }),
            Err(_) => bad(format!(
                "{EXEC_THREADS_ENV}={t:?} is not an integer (expected 1..={})",
                Self::MAX_THREADS
            )),
        }
    }

    /// Resolves the effective mode, letting the `HMCSIM_THREADS`
    /// environment variable upgrade an unconfigured (`Sequential`)
    /// mode — this is how the CI matrix drives the whole test suite
    /// through the parallel engine without touching call sites. An
    /// explicit `Parallel` setting always wins; `HMCSIM_THREADS=1`
    /// leaves `Sequential` in place; an invalid value (empty, garbage,
    /// zero, overflow, out of range) is an error — see
    /// [`ExecMode::parse_env_value`].
    pub fn resolve_env(self) -> Result<Self, HmcError> {
        match self {
            ExecMode::Sequential => match std::env::var(EXEC_THREADS_ENV) {
                Ok(raw) => Self::parse_env_value(&raw),
                Err(_) => Ok(ExecMode::Sequential),
            },
            explicit => Ok(explicit),
        }
    }

    /// Number of execution lanes (1 for sequential mode).
    pub fn threads(self) -> usize {
        match self {
            ExecMode::Sequential => 1,
            ExecMode::Parallel { threads } => threads,
        }
    }

    /// Validates the lane count.
    pub fn validate(self) -> Result<(), HmcError> {
        match self {
            ExecMode::Parallel { threads } if threads == 0 || threads > Self::MAX_THREADS => {
                Err(HmcError::MalformedPacket(format!(
                    "exec_mode threads must be 1..={}, got {threads}",
                    Self::MAX_THREADS
                )))
            }
            _ => Ok(()),
        }
    }
}

/// Whether the clock may compress provably-idle cycle runs.
///
/// With skipping on, [`crate::HmcSim::clock`] consults a conservative
/// event horizon — the earliest cycle at which any queue, in-flight
/// transit, link-layer retry or scheduled fault event could act — and
/// advances cycle count, power accounting, telemetry windows and
/// sanitizer bookkeeping across the whole idle run in O(1) closed-form
/// updates instead of executing the empty pipeline cycle by cycle.
/// The skip path is exact: `state_fingerprint()` is bit-identical with
/// skipping on versus off (see `DESIGN.md` §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SkipMode {
    /// Execute every cycle through the full pipeline (the default).
    #[default]
    Off,
    /// Compress idle regions via the event-horizon fast path.
    On,
}

/// Environment variable consulted by [`SkipMode::resolve_env`]; set to
/// `1`, `true` or `on` to opt unconfigured simulations into idle-cycle
/// skipping.
pub const SKIP_MODE_ENV: &str = "HMCSIM_SKIP";

impl SkipMode {
    /// Parses an explicit `HMCSIM_SKIP` value: `1`/`true`/`on` enable
    /// skipping, `0`/`false`/`off` disable it (case-insensitive,
    /// trimmed). Anything else — including an empty string — is
    /// rejected with a descriptive error rather than silently treated
    /// as "off".
    pub fn parse_env_value(raw: &str) -> Result<Self, HmcError> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "1" | "true" | "on" => Ok(SkipMode::On),
            "0" | "false" | "off" => Ok(SkipMode::Off),
            other => Err(HmcError::MalformedPacket(format!(
                "{SKIP_MODE_ENV}={other:?} is not a recognised value \
                 (expected 1/true/on or 0/false/off)"
            ))),
        }
    }

    /// Resolves the effective mode, letting the `HMCSIM_SKIP`
    /// environment variable upgrade an unconfigured (`Off`) mode —
    /// mirroring [`ExecMode::resolve_env`], this lets the CI matrix
    /// drive the whole test suite through the event-horizon engine
    /// without touching call sites. An explicit `On` setting always
    /// wins; an unrecognised value is an error — see
    /// [`SkipMode::parse_env_value`].
    pub fn resolve_env(self) -> Result<Self, HmcError> {
        match self {
            SkipMode::Off => match std::env::var(SKIP_MODE_ENV) {
                Ok(raw) => Self::parse_env_value(&raw),
                Err(_) => Ok(SkipMode::Off),
            },
            explicit => Ok(explicit),
        }
    }

    /// True when idle-cycle skipping is enabled.
    pub fn is_on(self) -> bool {
        self == SkipMode::On
    }
}

/// How multiple devices are wired together.
///
/// Shortest-path routing tables for every variant are computed once at
/// construction by [`crate::topology::Topology`]; the per-hop next
/// device is a table lookup, never a runtime search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinkTopology {
    /// A single host-attached device (the paper's evaluation setup).
    #[default]
    HostOnly,
    /// Devices chained in a line; the host attaches to device 0 and
    /// packets for cube *n* traverse *n* hops (paper §II's chaining
    /// support carried forward from HMC-Sim 1.0).
    Chain,
    /// Devices in a cycle: device *i* neighbours `(i±1) mod n`.
    /// Requires at least 3 cubes (a 2-cube ring is just a chain).
    Ring,
    /// A 2-D row-major mesh with `cols` columns and `n / cols` rows;
    /// each device neighbours its N/S/E/W grid neighbours. Requires
    /// the device count to be a multiple of `cols`.
    Mesh {
        /// Mesh width (devices per row).
        cols: usize,
    },
}

/// Configuration of a whole simulation context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Per-device configurations; the device index is its CUB id.
    pub devices: Vec<DeviceConfig>,
    /// Inter-device wiring.
    pub topology: LinkTopology,
    /// Invariant-checking sanitizer (disabled by default — a disabled
    /// sanitizer is guaranteed zero-perturbation).
    pub sanitizer: crate::sanitizer::SanitizerConfig,
    /// Telemetry registry (disabled by default — disabled telemetry is
    /// guaranteed zero-perturbation, and even enabled telemetry only
    /// observes).
    pub telemetry: crate::telemetry::TelemetryConfig,
    /// Tick execution mode ([`ExecMode::Sequential`] by default; the
    /// `HMCSIM_THREADS` environment variable can upgrade the default,
    /// see [`ExecMode::resolve_env`]).
    pub exec_mode: ExecMode,
    /// Idle-cycle compression ([`SkipMode::Off`] by default; the
    /// `HMCSIM_SKIP` environment variable can upgrade the default, see
    /// [`SkipMode::resolve_env`]).
    pub skip_mode: SkipMode,
    /// DRAM bank timing backend ([`TimingSelect::FixedLatency`] by
    /// default; the `HMCSIM_TIMING` environment variable can upgrade
    /// the default, see [`TimingSelect::resolve_env`]).
    pub timing: TimingSelect,
}

impl SimConfig {
    /// A single-device context.
    pub fn single(device: DeviceConfig) -> Self {
        SimConfig {
            devices: vec![device],
            topology: LinkTopology::HostOnly,
            sanitizer: Default::default(),
            telemetry: Default::default(),
            exec_mode: Default::default(),
            skip_mode: Default::default(),
            timing: Default::default(),
        }
    }

    /// A chain of `n` identical devices.
    pub fn chain(device: DeviceConfig, n: usize) -> Self {
        Self::fabric(device, n, LinkTopology::Chain)
    }

    /// A ring of `n` identical devices (`n >= 3`).
    pub fn ring(device: DeviceConfig, n: usize) -> Self {
        Self::fabric(device, n, LinkTopology::Ring)
    }

    /// A `cols × rows` row-major mesh of identical devices.
    pub fn mesh(device: DeviceConfig, cols: usize, rows: usize) -> Self {
        Self::fabric(device, cols * rows, LinkTopology::Mesh { cols })
    }

    /// `n` identical devices under an arbitrary wiring.
    pub fn fabric(device: DeviceConfig, n: usize, topology: LinkTopology) -> Self {
        SimConfig {
            devices: std::iter::repeat_n(device, n).collect(),
            topology,
            sanitizer: Default::default(),
            telemetry: Default::default(),
            exec_mode: Default::default(),
            skip_mode: Default::default(),
            timing: Default::default(),
        }
    }

    /// Validates every device plus topology constraints (at most 16
    /// cubes — the 4-bit extended CUB field; see `hmc_types::Cub`),
    /// including the routing-table preconditions of the chosen
    /// [`LinkTopology`].
    pub fn validate(&self) -> Result<(), HmcError> {
        if self.devices.is_empty() {
            return Err(HmcError::MalformedPacket("no devices configured".into()));
        }
        if self.devices.len() > hmc_types::Cub::MAX_CUBES {
            return Err(HmcError::InvalidCube(self.devices.len().min(255) as u8));
        }
        crate::topology::Topology::new(self.topology, self.devices.len())?;
        for d in &self.devices {
            d.validate()?;
        }
        self.exec_mode.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_are_valid() {
        let four = DeviceConfig::gen2_4link_4gb();
        four.validate().unwrap();
        assert_eq!(four.label(), "4Link-4GB");
        assert_eq!(four.total_vaults(), 32);
        assert_eq!(four.vault_queue_depth, 64);
        assert_eq!(four.xbar_queue_depth, 128);
        assert_eq!(four.block_size, 64);

        let eight = DeviceConfig::gen2_8link_8gb();
        eight.validate().unwrap();
        assert_eq!(eight.label(), "8Link-8GB");
        assert_eq!(eight.links, 8);
        assert_eq!(eight.capacity, 8 << 30);
        assert_eq!(eight.banks_per_vault, 32);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = DeviceConfig::gen2_4link_4gb();
        c.links = 3;
        assert!(c.validate().is_err());

        let mut c = DeviceConfig::gen2_4link_4gb();
        c.block_size = 48;
        assert!(c.validate().is_err());

        let mut c = DeviceConfig::gen2_4link_4gb();
        c.vault_queue_depth = 0;
        assert!(c.validate().is_err());

        let mut c = DeviceConfig::gen2_4link_4gb();
        c.vaults_per_quad = 3;
        assert!(c.validate().is_err());

        let mut c = DeviceConfig::gen2_4link_4gb();
        c.capacity = 3 << 30;
        assert!(c.validate().is_err());

        let mut c = DeviceConfig::gen2_4link_4gb();
        c.fault = FaultPlan::seeded(1).with_link_event(0, 9, false);
        assert!(c.validate().is_err(), "fault plan validated with the device");
    }

    #[test]
    fn sim_config_bounds() {
        assert!(SimConfig::single(DeviceConfig::default()).validate().is_ok());
        assert!(SimConfig::chain(DeviceConfig::default(), 8).validate().is_ok());
        assert!(SimConfig::chain(DeviceConfig::default(), 16).validate().is_ok());
        assert!(SimConfig::chain(DeviceConfig::default(), 17).validate().is_err());
        assert!(SimConfig::ring(DeviceConfig::default(), 3).validate().is_ok());
        assert!(SimConfig::ring(DeviceConfig::default(), 2).validate().is_err());
        assert!(SimConfig::mesh(DeviceConfig::default(), 4, 4).validate().is_ok());
        assert!(SimConfig::mesh(DeviceConfig::default(), 4, 2).validate().is_ok());
        let mut skewed = SimConfig::mesh(DeviceConfig::default(), 3, 2);
        skewed.devices.pop(); // 5 devices under cols=3: not a full grid
        assert!(skewed.validate().is_err());
        let empty = SimConfig {
            devices: vec![],
            topology: LinkTopology::HostOnly,
            sanitizer: Default::default(),
            telemetry: Default::default(),
            exec_mode: Default::default(),
            skip_mode: Default::default(),
            timing: Default::default(),
        };
        assert!(empty.validate().is_err());
    }

    #[test]
    fn degenerate_refresh_configs_rejected() {
        let ok = |interval, duration| {
            let mut c = DeviceConfig::gen2_4link_4gb();
            c.refresh = Some(RefreshConfig { interval, duration });
            c.validate()
        };
        assert!(ok(100, 10).is_ok());
        assert!(ok(2, 1).is_ok(), "duration one below interval is the edge of legal");
        for (interval, duration) in [(0, 10), (100, 0), (0, 0), (100, 100), (100, 101)] {
            let err = ok(interval, duration)
                .expect_err(&format!("interval={interval} duration={duration} must be rejected"));
            let msg = err.to_string();
            assert!(msg.contains("refresh"), "error names the refresh model: {msg}");
        }
        // None stays the way to disable refresh entirely.
        assert!(DeviceConfig::gen2_4link_4gb().validate().is_ok());
    }

    #[test]
    fn timing_select_defaults_fixed_in_sim_config() {
        assert_eq!(SimConfig::single(DeviceConfig::default()).timing, TimingSelect::FixedLatency);
        assert_eq!(SimConfig::chain(DeviceConfig::default(), 2).timing, TimingSelect::FixedLatency);
        // An explicit non-default selection is never overridden by the
        // environment (mirrors ExecMode/SkipMode).
        assert_eq!(
            TimingSelect::RowBuffer.resolve_env().unwrap(),
            TimingSelect::RowBuffer
        );
    }

    #[test]
    fn exec_mode_bounds_and_threads() {
        assert_eq!(ExecMode::Sequential.threads(), 1);
        assert_eq!(ExecMode::Parallel { threads: 4 }.threads(), 4);
        assert!(ExecMode::Parallel { threads: 0 }.validate().is_err());
        assert!(ExecMode::Parallel { threads: 65 }.validate().is_err());
        assert!(ExecMode::Parallel { threads: 1 }.validate().is_ok());
        let mut c = SimConfig::single(DeviceConfig::default());
        c.exec_mode = ExecMode::Parallel { threads: 0 };
        assert!(c.validate().is_err());
        // An explicit setting is never overridden by the environment.
        assert_eq!(
            ExecMode::Parallel { threads: 2 }.resolve_env().unwrap(),
            ExecMode::Parallel { threads: 2 }
        );
    }

    #[test]
    fn exec_env_values_parse_or_reject_loudly() {
        // Valid values.
        assert_eq!(ExecMode::parse_env_value("1").unwrap(), ExecMode::Sequential);
        assert_eq!(ExecMode::parse_env_value(" 8 ").unwrap(), ExecMode::Parallel { threads: 8 });
        assert_eq!(ExecMode::parse_env_value("64").unwrap(), ExecMode::Parallel { threads: 64 });
        // Invalid values are errors, not silent fallbacks.
        for bad in ["", "   ", "0", "65", "garbage", "-2", "4.5", "8 threads",
                    "99999999999999999999999999"] {
            let err = ExecMode::parse_env_value(bad)
                .expect_err(&format!("{bad:?} should be rejected"));
            let msg = err.to_string();
            assert!(msg.contains(EXEC_THREADS_ENV), "error names the variable: {msg}");
        }
        // Overflow specifically mentions the integer requirement.
        let msg = ExecMode::parse_env_value("99999999999999999999999999")
            .unwrap_err()
            .to_string();
        assert!(msg.contains("not an integer"), "{msg}");
    }

    #[test]
    fn skip_env_values_parse_or_reject_loudly() {
        for on in ["1", "true", "ON", " on "] {
            assert_eq!(SkipMode::parse_env_value(on).unwrap(), SkipMode::On);
        }
        for off in ["0", "false", "OFF", " off "] {
            assert_eq!(SkipMode::parse_env_value(off).unwrap(), SkipMode::Off);
        }
        for bad in ["", "yes", "2", "enabled", "skip"] {
            let err = SkipMode::parse_env_value(bad)
                .expect_err(&format!("{bad:?} should be rejected"));
            let msg = err.to_string();
            assert!(msg.contains(SKIP_MODE_ENV), "error names the variable: {msg}");
        }
    }

    #[test]
    fn skip_mode_defaults_off_and_explicit_on_wins() {
        assert_eq!(SkipMode::default(), SkipMode::Off);
        assert!(!SkipMode::Off.is_on());
        assert!(SkipMode::On.is_on());
        // An explicit setting is never downgraded by the environment.
        assert_eq!(SkipMode::On.resolve_env().unwrap(), SkipMode::On);
        assert_eq!(SimConfig::single(DeviceConfig::default()).skip_mode, SkipMode::Off);
    }
}
