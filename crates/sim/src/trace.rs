//! The trace subsystem.
//!
//! HMC-Sim's tracing lets users "see exactly how and where memory
//! operations progressed through the device" (paper §IV-A). Trace
//! output is line-oriented text, one event per line, gated by a
//! bitmask of [`TraceLevel`]s. CMC operations trace under their
//! registered `cmc_str` name exactly like standard commands — the
//! paper's *Discrete Tracing* requirement.

use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A bitmask of trace event classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceLevel(u32);

impl TraceLevel {
    /// No tracing.
    pub const NONE: TraceLevel = TraceLevel(0);
    /// Bank-level activity (conflicts, busy cycles).
    pub const BANK: TraceLevel = TraceLevel(1 << 0);
    /// Queue occupancy transitions.
    pub const QUEUE: TraceLevel = TraceLevel(1 << 1);
    /// Command execution (including CMC operations by name).
    pub const CMD: TraceLevel = TraceLevel(1 << 2);
    /// Stall events (full queues, busy banks).
    pub const STALL: TraceLevel = TraceLevel(1 << 3);
    /// End-to-end request latencies.
    pub const LATENCY: TraceLevel = TraceLevel(1 << 4);
    /// CMC registration and execution detail.
    pub const CMC: TraceLevel = TraceLevel(1 << 5);
    /// Power accounting events.
    pub const POWER: TraceLevel = TraceLevel(1 << 6);
    /// Fault injection and recovery events (CRC errors, vault
    /// faults, poisoned responses, link state changes, failover).
    pub const FAULT: TraceLevel = TraceLevel(1 << 7);
    /// Everything.
    pub const ALL: TraceLevel = TraceLevel(u32::MAX);

    /// Union of two masks.
    #[inline]
    pub const fn with(self, other: TraceLevel) -> TraceLevel {
        TraceLevel(self.0 | other.0)
    }

    /// True when any bit of `class` is enabled.
    #[inline]
    pub const fn contains(self, class: TraceLevel) -> bool {
        self.0 & class.0 != 0
    }
}

impl std::ops::BitOr for TraceLevel {
    type Output = TraceLevel;
    fn bitor(self, rhs: TraceLevel) -> TraceLevel {
        self.with(rhs)
    }
}

/// A shared in-memory trace sink, handy for tests and analysis.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    lines: Arc<Mutex<Vec<String>>>,
}

impl TraceBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all recorded lines.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("trace buffer lock").clone()
    }

    /// Number of recorded lines.
    pub fn len(&self) -> usize {
        self.lines.lock().expect("trace buffer lock").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lines containing `needle`.
    pub fn grep(&self, needle: &str) -> Vec<String> {
        self.lines()
            .into_iter()
            .filter(|l| l.contains(needle))
            .collect()
    }

    fn record(&self, line: String) {
        self.lines.lock().expect("trace buffer lock").push(line);
    }
}

/// A bounded ring buffer of recent trace lines, shared between the
/// tracer and the sanitizer's forensic-dump machinery. Unlike the
/// sinks, an attached ring captures *every* event class regardless of
/// the tracer's level mask, so a forensic dump carries the events
/// leading up to a violation even when user-facing tracing is off.
#[derive(Debug, Clone, Default)]
pub struct TraceRing {
    inner: Arc<Mutex<RingInner>>,
}

#[derive(Debug, Default)]
struct RingInner {
    lines: std::collections::VecDeque<String>,
    capacity: usize,
}

impl TraceRing {
    /// Creates a ring holding the most recent `capacity` lines.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            inner: Arc::new(Mutex::new(RingInner {
                lines: std::collections::VecDeque::with_capacity(capacity),
                capacity: capacity.max(1),
            })),
        }
    }

    /// Snapshot of the retained lines, oldest first.
    pub fn lines(&self) -> Vec<String> {
        let inner = self.inner.lock().expect("trace ring lock");
        inner.lines.iter().cloned().collect()
    }

    /// Number of retained lines.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace ring lock").lines.len()
    }

    /// True when nothing has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn record(&self, line: &str) {
        let mut inner = self.inner.lock().expect("trace ring lock");
        if inner.lines.len() >= inner.capacity {
            inner.lines.pop_front();
        }
        inner.lines.push_back(line.to_owned());
    }
}

enum Sink {
    Null,
    Buffer(TraceBuffer),
    Writer(Box<dyn Write + Send>),
}

impl fmt::Debug for Sink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sink::Null => f.write_str("Sink::Null"),
            Sink::Buffer(_) => f.write_str("Sink::Buffer"),
            Sink::Writer(_) => f.write_str("Sink::Writer"),
        }
    }
}

/// The trace recorder attached to a simulation context.
#[derive(Debug)]
pub struct Tracer {
    level: TraceLevel,
    sink: Sink,
    /// Optional forensic ring; captures all classes when attached.
    ring: Option<TraceRing>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer { level: TraceLevel::NONE, sink: Sink::Null, ring: None }
    }

    /// Traces into a shared in-memory buffer.
    pub fn to_buffer(level: TraceLevel, buffer: TraceBuffer) -> Self {
        Tracer { level, sink: Sink::Buffer(buffer), ring: None }
    }

    /// Traces into any writer (e.g. a file), one line per event.
    pub fn to_writer(level: TraceLevel, writer: Box<dyn Write + Send>) -> Self {
        Tracer { level, sink: Sink::Writer(writer), ring: None }
    }

    /// Attaches a forensic ring that captures every event class
    /// independently of the level mask.
    pub fn attach_ring(&mut self, ring: TraceRing) {
        self.ring = Some(ring);
    }

    /// Detaches the forensic ring, if any.
    pub fn detach_ring(&mut self) {
        self.ring = None;
    }

    /// The active level mask.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Replaces the level mask.
    pub fn set_level(&mut self, level: TraceLevel) {
        self.level = level;
    }

    /// True when events of `class` would be recorded.
    #[inline]
    pub fn enabled(&self, class: TraceLevel) -> bool {
        self.level.contains(class) && !matches!(self.sink, Sink::Null)
    }

    /// True when events of `class` reach *any* destination — the sink
    /// (level permitting) or an attached forensic ring (always). The
    /// parallel engine uses this to decide whether worker lanes must
    /// format deferred event text at all; when it is false for CMD
    /// events the fast path skips formatting entirely, exactly like
    /// [`Tracer::event`]'s early return.
    #[inline]
    pub fn captures(&self, class: TraceLevel) -> bool {
        self.enabled(class) || self.ring.is_some()
    }

    /// Replays deferred events produced on a worker lane, in the order
    /// given. Each event goes through [`Tracer::event`], so level
    /// masking and ring capture behave exactly as for live events.
    pub(crate) fn replay(&mut self, events: &[DeferredEvent]) {
        for ev in events {
            self.event(ev.class, ev.cycle, ev.tag, format_args!("{}", ev.detail));
        }
    }

    /// Records one event line in HMC-Sim's trace format:
    /// `HMCSIM_TRACE : <cycle> : <CLASS> : <detail>`.
    ///
    /// The sink receives the line only when `class` is enabled; an
    /// attached forensic ring receives it unconditionally.
    pub fn event(&mut self, class: TraceLevel, cycle: u64, tag: &str, detail: fmt::Arguments<'_>) {
        let sink_on = self.enabled(class);
        let ring_on = self.ring.is_some();
        if !sink_on && !ring_on {
            return;
        }
        let line = format!("HMCSIM_TRACE : {cycle} : {tag} : {detail}");
        if let Some(ring) = &self.ring {
            ring.record(&line);
        }
        if !sink_on {
            return;
        }
        match &mut self.sink {
            Sink::Null => {}
            Sink::Buffer(buf) => buf.record(line),
            Sink::Writer(w) => {
                let _ = writeln!(w, "{line}");
            }
        }
    }
}

/// One trace event captured on a worker lane and replayed at commit.
#[derive(Debug, Clone)]
pub(crate) struct DeferredEvent {
    pub(crate) class: TraceLevel,
    pub(crate) cycle: u64,
    pub(crate) tag: &'static str,
    pub(crate) detail: String,
}

/// A shard-local trace accumulator. Worker lanes cannot touch the
/// shared [`Tracer`], so they record into one of these; the commit
/// phase replays each vault's events in vault order, reproducing the
/// sequential line order byte for byte. When `capture` is false the
/// buffer drops events without formatting them (the common case:
/// tracing off, no forensic ring).
#[derive(Debug, Default)]
pub(crate) struct EventBuffer {
    capture: bool,
    events: Vec<DeferredEvent>,
}

impl EventBuffer {
    pub(crate) fn new(capture: bool) -> Self {
        EventBuffer { capture, events: Vec::new() }
    }

    pub(crate) fn event(
        &mut self,
        class: TraceLevel,
        cycle: u64,
        tag: &'static str,
        detail: fmt::Arguments<'_>,
    ) {
        if self.capture {
            self.events.push(DeferredEvent { class, cycle, tag, detail: detail.to_string() });
        }
    }

    #[cfg(test)]
    pub(crate) fn events(&self) -> &[DeferredEvent] {
        &self.events
    }

    /// Consumes the buffer, yielding the captured events for the
    /// commit phase.
    pub(crate) fn into_events(self) -> Vec<DeferredEvent> {
        self.events
    }
}

/// Either the live tracer (sequential path) or a deferred buffer
/// (worker lanes): the single execution core in `device.rs` writes
/// through this so both paths share one implementation.
pub(crate) enum TraceLane<'a> {
    /// Events go straight to the simulation's tracer.
    Live(&'a mut Tracer),
    /// Events are buffered for ordered replay at commit.
    Deferred(&'a mut EventBuffer),
}

impl TraceLane<'_> {
    #[inline]
    pub(crate) fn event(
        &mut self,
        class: TraceLevel,
        cycle: u64,
        tag: &'static str,
        detail: fmt::Arguments<'_>,
    ) {
        match self {
            TraceLane::Live(t) => t.event(class, cycle, tag, detail),
            TraceLane::Deferred(b) => b.event(class, cycle, tag, detail),
        }
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deferred_events_replay_in_order() {
        let buf = TraceBuffer::new();
        let mut t = Tracer::to_buffer(TraceLevel::CMD, buf.clone());
        let mut lane = EventBuffer::new(t.captures(TraceLevel::CMD));
        lane.event(TraceLevel::CMD, 5, "RQST", format_args!("first"));
        lane.event(TraceLevel::CMD, 5, "RQST", format_args!("second"));
        t.replay(lane.events());
        assert_eq!(
            buf.lines(),
            vec![
                "HMCSIM_TRACE : 5 : RQST : first".to_string(),
                "HMCSIM_TRACE : 5 : RQST : second".to_string(),
            ]
        );
    }

    #[test]
    fn uncaptured_buffer_skips_formatting() {
        let mut lane = EventBuffer::new(false);
        lane.event(TraceLevel::CMD, 1, "RQST", format_args!("dropped"));
        assert!(lane.events().is_empty());
    }

    #[test]
    fn captures_tracks_sink_and_ring() {
        let mut t = Tracer::disabled();
        assert!(!t.captures(TraceLevel::CMD));
        t.attach_ring(TraceRing::new(4));
        assert!(t.captures(TraceLevel::CMD), "ring captures every class");
        let t2 = Tracer::to_buffer(TraceLevel::CMD, TraceBuffer::new());
        assert!(t2.captures(TraceLevel::CMD));
        assert!(!t2.captures(TraceLevel::BANK));
    }

    #[test]
    fn level_mask_algebra() {
        let m = TraceLevel::CMD | TraceLevel::STALL;
        assert!(m.contains(TraceLevel::CMD));
        assert!(m.contains(TraceLevel::STALL));
        assert!(!m.contains(TraceLevel::BANK));
        assert!(TraceLevel::ALL.contains(TraceLevel::POWER));
        assert!(!TraceLevel::NONE.contains(TraceLevel::CMD));
    }

    #[test]
    fn buffer_records_enabled_events_only() {
        let buf = TraceBuffer::new();
        let mut t = Tracer::to_buffer(TraceLevel::CMD, buf.clone());
        t.event(TraceLevel::CMD, 10, "RQST", format_args!("CMD=INC8 VAULT=3"));
        t.event(TraceLevel::STALL, 11, "STALL", format_args!("xbar full"));
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.lines()[0], "HMCSIM_TRACE : 10 : RQST : CMD=INC8 VAULT=3");
        assert_eq!(buf.grep("INC8").len(), 1);
        assert!(!buf.is_empty());
    }

    #[test]
    fn disabled_tracer_is_silent() {
        let mut t = Tracer::disabled();
        assert!(!t.enabled(TraceLevel::CMD));
        t.event(TraceLevel::CMD, 0, "RQST", format_args!("dropped"));
    }

    #[test]
    fn ring_captures_all_classes_and_bounds_length() {
        let ring = TraceRing::new(3);
        let mut t = Tracer::disabled();
        t.attach_ring(ring.clone());
        // The level mask is NONE, but the ring still captures events.
        for i in 0..5 {
            t.event(TraceLevel::FAULT, i, "FAULT", format_args!("ev{i}"));
        }
        assert_eq!(ring.len(), 3, "ring retains only the newest lines");
        let lines = ring.lines();
        assert!(lines[0].contains("ev2"));
        assert!(lines[2].contains("ev4"));
        t.detach_ring();
        t.event(TraceLevel::FAULT, 9, "FAULT", format_args!("after detach"));
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn writer_sink_emits_lines() {
        let cursor: Vec<u8> = Vec::new();
        let shared = Arc::new(Mutex::new(cursor));
        struct SharedWriter(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut t = Tracer::to_writer(
            TraceLevel::LATENCY,
            Box::new(SharedWriter(shared.clone())),
        );
        t.event(TraceLevel::LATENCY, 99, "LAT", format_args!("tag7 lat=3"));
        let out = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        assert_eq!(out, "HMCSIM_TRACE : 99 : LAT : tag7 lat=3\n");
    }
}
