//! The trace subsystem.
//!
//! HMC-Sim's tracing lets users "see exactly how and where memory
//! operations progressed through the device" (paper §IV-A). Since the
//! flight-recorder rework the subsystem is *structured first*: every
//! instrumentation point emits one compact, `Copy`-able
//! [`TraceRecord`] (cycle, lane coordinates, tag, a [`TraceKind`] and
//! two small payload words — never a `String` on the hot path). The
//! classic line-oriented text trace is a pure formatting view over
//! that stream: [`TraceRecord::render_line`] reproduces the historic
//! `HMCSIM_TRACE : <cycle> : <CLASS> : <detail>` format byte for
//! byte, so `grep`-based analyses and the [`crate::trace_analysis`]
//! parser keep working unchanged. CMC operations trace under their
//! registered `cmc_str` name exactly like standard commands — the
//! paper's *Discrete Tracing* requirement.
//!
//! Destinations:
//!
//! - a level-masked text [`Sink`] (buffer or writer) — the user-facing
//!   trace, unchanged semantics;
//! - an optional [`TraceRing`] of formatted lines — the sanitizer's
//!   bounded forensic tail (captures every class);
//! - an optional [`FlightRecorder`] — per-lane, drop-counting rings of
//!   raw [`TraceRecord`]s, cheap enough to leave on for a whole run,
//!   snapshot-included and exportable to Perfetto
//!   (see [`crate::perfetto`]).

use crate::config::SpecRevision;
use hmc_types::HmcRqst;
use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A bitmask of trace event classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceLevel(u32);

impl TraceLevel {
    /// No tracing.
    pub const NONE: TraceLevel = TraceLevel(0);
    /// Bank-level activity (conflicts, busy cycles).
    pub const BANK: TraceLevel = TraceLevel(1 << 0);
    /// Queue occupancy transitions.
    pub const QUEUE: TraceLevel = TraceLevel(1 << 1);
    /// Command execution (including CMC operations by name).
    pub const CMD: TraceLevel = TraceLevel(1 << 2);
    /// Stall events (full queues, busy banks).
    pub const STALL: TraceLevel = TraceLevel(1 << 3);
    /// End-to-end request latencies.
    pub const LATENCY: TraceLevel = TraceLevel(1 << 4);
    /// CMC registration and execution detail.
    pub const CMC: TraceLevel = TraceLevel(1 << 5);
    /// Power accounting events.
    pub const POWER: TraceLevel = TraceLevel(1 << 6);
    /// Fault injection and recovery events (CRC errors, vault
    /// faults, poisoned responses, link state changes, failover).
    pub const FAULT: TraceLevel = TraceLevel(1 << 7);
    /// Engine-internal spans: parallel plan/commit phases, idle-skip
    /// horizon jumps, sanitizer audits, checkpoint commits.
    pub const ENGINE: TraceLevel = TraceLevel(1 << 8);
    /// Everything.
    pub const ALL: TraceLevel = TraceLevel(u32::MAX);

    /// Union of two masks.
    #[inline]
    pub const fn with(self, other: TraceLevel) -> TraceLevel {
        TraceLevel(self.0 | other.0)
    }

    /// True when any bit of `class` is enabled.
    #[inline]
    pub const fn contains(self, class: TraceLevel) -> bool {
        self.0 & class.0 != 0
    }
}

impl std::ops::BitOr for TraceLevel {
    type Output = TraceLevel;
    fn bitor(self, rhs: TraceLevel) -> TraceLevel {
        self.with(rhs)
    }
}

/// A flight-recorder lane: which logical component timeline a record
/// belongs to. Lanes have independent ring capacity so chatty bank
/// traffic can never evict the link-fault tail (or vice versa).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightLane {
    /// Host-edge events: sends, deliveries, zombies.
    Host,
    /// Link-protocol events: retries, CRC faults, link state.
    Link,
    /// Crossbar/vault-queue events: routing, queue-full, failover,
    /// vault faults, CMC execution.
    Vault,
    /// Bank-service events: command execution, refresh, bank-busy.
    Bank,
    /// Engine-internal spans: plan/commit, idle skips, sanitizer
    /// audits, checkpoints.
    Engine,
}

impl FlightLane {
    /// All lanes, in ring order.
    pub const ALL: [FlightLane; 5] = [
        FlightLane::Host,
        FlightLane::Link,
        FlightLane::Vault,
        FlightLane::Bank,
        FlightLane::Engine,
    ];

    /// Stable lane name (used in snapshots and Perfetto tracks).
    pub const fn name(self) -> &'static str {
        match self {
            FlightLane::Host => "host",
            FlightLane::Link => "link",
            FlightLane::Vault => "vault",
            FlightLane::Bank => "bank",
            FlightLane::Engine => "engine",
        }
    }

    #[inline]
    pub(crate) const fn index(self) -> usize {
        self as usize
    }
}

/// The command behind a [`TraceKind::Cmd`]-family record: enough to
/// recover the traced mnemonic without storing a string per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdRef {
    /// No command attached.
    None,
    /// A standard (or CMC-coded) request; the mnemonic is derived
    /// from the command code at render time.
    Rqst(HmcRqst),
    /// An interned name in the tracer's [name table] — used for the
    /// registered `cmc_str` of loaded CMC operations and for
    /// link-error texts, which only exist on cold paths.
    ///
    /// [name table]: FlightSnapshot::names
    Name(u16),
    /// A CMC request whose command slot has no operation loaded;
    /// renders as `CMC<code>(inactive)`.
    Inactive(u8),
}

/// The event kind: one variant per instrumentation point. The kind
/// determines the trace class (level-mask bit), the text class tag
/// and the flight-recorder lane, plus how the payload words `a`/`b`
/// are rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Host accepted a request onto a link (`a` = FLIT count).
    HostSend,
    /// Response delivered to the host (`a` = end-to-end latency).
    Deliver,
    /// Response abandoned after link failover exhaustion.
    Zombie,
    /// Injected link error: packet parked for retry (`a` = replay
    /// cycle).
    LinkRetry,
    /// Wire corruption caught by packet CRC (`a` = flipped bit, `b` =
    /// replay cycle, `cmd` = interned error text).
    LinkCrc,
    /// Corrupted packet rejected at device ingress (`cmd` = interned
    /// error text).
    IngressCrc,
    /// Scheduled link outage began.
    LinkDown,
    /// Scheduled link outage ended.
    LinkUp,
    /// Crossbar response queue full (response stalls in vault).
    XbarRspFull,
    /// Response re-routed around a dead link (`a` = preferred link).
    Failover,
    /// Request routed crossbar → vault queue (`a` = new occupancy).
    XbarToVault,
    /// Vault request queue full (request stalls in crossbar).
    VaultRqstFull,
    /// Vault response queue full (bank service stalls).
    VaultRspFull,
    /// Injected vault fault (`a` = ERRSTAT code).
    VaultFault,
    /// Response payload poisoned by the fault plan.
    Poison,
    /// Bank refresh window closed the bank this cycle.
    Refresh,
    /// Bank busy: head-of-line request waits.
    BankBusy,
    /// A command executed at a bank (`a` = address; `cmd` carries the
    /// mnemonic source).
    Cmd,
    /// A command rejected by the revision gate (`b` = spec revision
    /// discriminant).
    CmdReject,
    /// A loaded CMC operation executed (`a` = command code, `quad` =
    /// active flag, `b` = response length).
    CmcOp,
    /// Parallel engine planned vault work (`a` = vaults with work,
    /// `b` = items taken).
    PlanStage,
    /// Parallel engine fell back to the serial path this device-cycle.
    SerialFallback,
    /// Parallel engine committed worker results (`a` = vaults
    /// committed).
    CommitStage,
    /// Idle-skip horizon jump (`a` = first skipped cycle, `b` =
    /// skipped-cycle extent).
    IdleSkip,
    /// Sanitizer audit flagged violations this cycle (`a` = count).
    SanitizerAudit,
    /// Sanitizer captured a periodic recovery checkpoint.
    Checkpoint,
    /// Request forwarded one fabric hop toward its target cube
    /// (`dev` = sender, `a` = next-hop device, `b` = arrival cycle).
    HopRqst,
    /// Response forwarded one fabric hop toward its entry cube
    /// (`dev` = sender, `a` = next-hop device, `b` = arrival cycle).
    HopRsp,
}

impl TraceKind {
    /// The level-mask class this kind traces under.
    pub const fn class(self) -> TraceLevel {
        match self {
            TraceKind::HostSend
            | TraceKind::XbarToVault
            | TraceKind::HopRqst
            | TraceKind::HopRsp => TraceLevel::QUEUE,
            TraceKind::Deliver => TraceLevel::LATENCY,
            TraceKind::LinkRetry
            | TraceKind::XbarRspFull
            | TraceKind::VaultRqstFull
            | TraceKind::VaultRspFull => TraceLevel::STALL,
            TraceKind::Zombie
            | TraceKind::LinkCrc
            | TraceKind::IngressCrc
            | TraceKind::LinkDown
            | TraceKind::LinkUp
            | TraceKind::Failover
            | TraceKind::VaultFault
            | TraceKind::Poison => TraceLevel::FAULT,
            TraceKind::Refresh | TraceKind::BankBusy => TraceLevel::BANK,
            TraceKind::Cmd | TraceKind::CmdReject => TraceLevel::CMD,
            TraceKind::CmcOp => TraceLevel::CMC,
            TraceKind::PlanStage
            | TraceKind::SerialFallback
            | TraceKind::CommitStage
            | TraceKind::IdleSkip
            | TraceKind::SanitizerAudit
            | TraceKind::Checkpoint => TraceLevel::ENGINE,
        }
    }

    /// The text-format class tag (third column of a trace line).
    pub const fn class_tag(self) -> &'static str {
        match self {
            TraceKind::HostSend => "SEND",
            TraceKind::Deliver => "LATENCY",
            TraceKind::LinkRetry => "RETRY",
            TraceKind::Zombie
            | TraceKind::LinkCrc
            | TraceKind::IngressCrc
            | TraceKind::LinkDown
            | TraceKind::LinkUp
            | TraceKind::Failover
            | TraceKind::VaultFault
            | TraceKind::Poison => "FAULT",
            TraceKind::XbarRspFull | TraceKind::VaultRqstFull | TraceKind::VaultRspFull => "STALL",
            TraceKind::XbarToVault => "QUEUE",
            TraceKind::HopRqst | TraceKind::HopRsp => "HOP",
            TraceKind::Refresh | TraceKind::BankBusy => "BANK",
            TraceKind::Cmd | TraceKind::CmdReject => "RQST",
            TraceKind::CmcOp => "CMC",
            TraceKind::PlanStage
            | TraceKind::SerialFallback
            | TraceKind::CommitStage
            | TraceKind::IdleSkip
            | TraceKind::SanitizerAudit
            | TraceKind::Checkpoint => "ENGINE",
        }
    }

    /// The flight-recorder lane this kind records into.
    pub const fn lane(self) -> FlightLane {
        match self {
            TraceKind::HostSend | TraceKind::Deliver | TraceKind::Zombie => FlightLane::Host,
            TraceKind::LinkRetry
            | TraceKind::LinkCrc
            | TraceKind::IngressCrc
            | TraceKind::LinkDown
            | TraceKind::LinkUp
            | TraceKind::HopRqst
            | TraceKind::HopRsp => FlightLane::Link,
            TraceKind::XbarRspFull
            | TraceKind::Failover
            | TraceKind::XbarToVault
            | TraceKind::VaultRqstFull
            | TraceKind::VaultRspFull
            | TraceKind::VaultFault
            | TraceKind::Poison
            | TraceKind::CmcOp => FlightLane::Vault,
            TraceKind::Refresh | TraceKind::BankBusy | TraceKind::Cmd | TraceKind::CmdReject => {
                FlightLane::Bank
            }
            TraceKind::PlanStage
            | TraceKind::SerialFallback
            | TraceKind::CommitStage
            | TraceKind::IdleSkip
            | TraceKind::SanitizerAudit
            | TraceKind::Checkpoint => FlightLane::Engine,
        }
    }

    /// Stable short name (Perfetto slice names, snapshot debugging).
    pub const fn name(self) -> &'static str {
        match self {
            TraceKind::HostSend => "send",
            TraceKind::Deliver => "deliver",
            TraceKind::Zombie => "zombie",
            TraceKind::LinkRetry => "link_retry",
            TraceKind::LinkCrc => "link_crc",
            TraceKind::IngressCrc => "ingress_crc",
            TraceKind::LinkDown => "link_down",
            TraceKind::LinkUp => "link_up",
            TraceKind::XbarRspFull => "xbar_rsp_full",
            TraceKind::Failover => "failover",
            TraceKind::XbarToVault => "xbar_to_vault",
            TraceKind::VaultRqstFull => "vault_rqst_full",
            TraceKind::VaultRspFull => "vault_rsp_full",
            TraceKind::VaultFault => "vault_fault",
            TraceKind::Poison => "poison",
            TraceKind::Refresh => "refresh",
            TraceKind::BankBusy => "bank_busy",
            TraceKind::Cmd => "cmd",
            TraceKind::CmdReject => "cmd_reject",
            TraceKind::CmcOp => "cmc_op",
            TraceKind::PlanStage => "plan",
            TraceKind::SerialFallback => "serial_fallback",
            TraceKind::CommitStage => "commit",
            TraceKind::IdleSkip => "idle_skip",
            TraceKind::SanitizerAudit => "sanitizer_audit",
            TraceKind::Checkpoint => "checkpoint",
            TraceKind::HopRqst => "hop_rqst",
            TraceKind::HopRsp => "hop_rsp",
        }
    }

    /// Every kind, in stable wire order — the snapshot codec encodes
    /// a kind as its index here, so the order must never change
    /// (append new kinds at the end).
    pub const ALL: [TraceKind; 28] = [
        TraceKind::HostSend,
        TraceKind::Deliver,
        TraceKind::Zombie,
        TraceKind::LinkRetry,
        TraceKind::LinkCrc,
        TraceKind::IngressCrc,
        TraceKind::LinkDown,
        TraceKind::LinkUp,
        TraceKind::XbarRspFull,
        TraceKind::Failover,
        TraceKind::XbarToVault,
        TraceKind::VaultRqstFull,
        TraceKind::VaultRspFull,
        TraceKind::VaultFault,
        TraceKind::Poison,
        TraceKind::Refresh,
        TraceKind::BankBusy,
        TraceKind::Cmd,
        TraceKind::CmdReject,
        TraceKind::CmcOp,
        TraceKind::PlanStage,
        TraceKind::SerialFallback,
        TraceKind::CommitStage,
        TraceKind::IdleSkip,
        TraceKind::SanitizerAudit,
        TraceKind::Checkpoint,
        TraceKind::HopRqst,
        TraceKind::HopRsp,
    ];

    /// The stable wire code (index in [`TraceKind::ALL`]).
    pub fn code(self) -> u8 {
        TraceKind::ALL.iter().position(|k| *k == self).expect("kind in ALL") as u8
    }

    /// The kind for a wire code, `None` for out-of-range codes.
    pub fn from_code(code: u8) -> Option<TraceKind> {
        TraceKind::ALL.get(code as usize).copied()
    }
}

/// One structured trace event: a compact, `Copy`-able record emitted
/// at every packet lifecycle edge and engine phase. Unused coordinate
/// fields are zero; `a`/`b` are kind-specific payload words (see the
/// [`TraceKind`] variant docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation cycle the event occurred at.
    pub cycle: u64,
    /// What happened.
    pub kind: TraceKind,
    /// Device (cube) index.
    pub dev: u16,
    /// Link index.
    pub link: u8,
    /// Quadrant index (also carries the CMC active flag for
    /// [`TraceKind::CmcOp`]).
    pub quad: u8,
    /// Vault index.
    pub vault: u16,
    /// Bank index.
    pub bank: u16,
    /// Packet tag.
    pub tag: u16,
    /// Command reference for command-shaped kinds.
    pub cmd: CmdRef,
    /// First payload word (kind-specific).
    pub a: u64,
    /// Second payload word (kind-specific).
    pub b: u64,
}

impl TraceRecord {
    /// A zeroed record of `kind` at `cycle`; fill the relevant fields
    /// with struct-update syntax.
    pub const fn new(cycle: u64, kind: TraceKind) -> Self {
        TraceRecord {
            cycle,
            kind,
            dev: 0,
            link: 0,
            quad: 0,
            vault: 0,
            bank: 0,
            tag: 0,
            cmd: CmdRef::None,
            a: 0,
            b: 0,
        }
    }

    /// The mnemonic this record traces under, resolving interned
    /// names through `resolve`.
    pub fn mnemonic<F: Fn(u16) -> String>(&self, resolve: F) -> String {
        match self.cmd {
            CmdRef::None => String::new(),
            CmdRef::Rqst(r) => r.mnemonic(),
            CmdRef::Name(idx) => resolve(idx),
            CmdRef::Inactive(code) => format!("CMC{code}(inactive)"),
        }
    }

    /// Renders the detail column of the historic text format,
    /// byte-identical to the strings the pre-structured tracer
    /// emitted. `resolve` maps interned name indices to strings.
    pub fn render_detail<F: Fn(u16) -> String>(&self, resolve: F) -> String {
        let r = self;
        match r.kind {
            TraceKind::HostSend => {
                format!("send: dev={} link={} tag={} flits={}", r.dev, r.link, r.tag, r.a)
            }
            TraceKind::Deliver => format!("tag={} lat={} link={}", r.tag, r.a, r.link),
            TraceKind::Zombie => format!("kind=ZOMBIE tag={} link={}", r.tag, r.link),
            TraceKind::LinkRetry => format!(
                "link error injected: dev={} link={}, replay at {}",
                r.dev, r.link, r.a
            ),
            TraceKind::LinkCrc => format!(
                "kind=CRC dev={} link={} bit={} replay at {} ({})",
                r.dev,
                r.link,
                r.a,
                r.b,
                resolve(match r.cmd {
                    CmdRef::Name(idx) => idx,
                    _ => u16::MAX,
                })
            ),
            TraceKind::IngressCrc => format!(
                "kind=CRC dev={} link={} rejected at ingress ({})",
                r.dev,
                r.link,
                resolve(match r.cmd {
                    CmdRef::Name(idx) => idx,
                    _ => u16::MAX,
                })
            ),
            TraceKind::LinkDown => format!("kind=LINKDOWN link={}", r.link),
            TraceKind::LinkUp => format!("kind=LINKUP link={}", r.link),
            TraceKind::XbarRspFull => {
                format!("xbar rsp queue full: vault={} link={}", r.vault, r.link)
            }
            TraceKind::Failover => format!(
                "kind=FAILOVER vault={} from={} to={} tag={}",
                r.vault, r.a, r.link, r.tag
            ),
            TraceKind::XbarToVault => {
                format!("xbar->vault: link={} vault={} occ={}", r.link, r.vault, r.a)
            }
            TraceKind::VaultRqstFull => {
                format!("vault rqst queue full: link={} vault={}", r.link, r.vault)
            }
            TraceKind::VaultRspFull => format!("vault rsp queue full: vault={}", r.vault),
            TraceKind::VaultFault => format!(
                "kind=VAULT vault={} tag={} errstat={:#x}",
                r.vault, r.tag, r.a
            ),
            TraceKind::Poison => format!("kind=POISON vault={} tag={}", r.vault, r.tag),
            TraceKind::Refresh => format!("refresh: vault={} bank={}", r.vault, r.bank),
            TraceKind::BankBusy => format!("bank busy: vault={} bank={}", r.vault, r.bank),
            TraceKind::Cmd => format!(
                "CMD={} CUB={} QUAD={} VAULT={} BANK={} ADDR={:#x} TAG={}",
                self.mnemonic(resolve),
                r.dev,
                r.quad,
                r.vault,
                r.bank,
                r.a,
                r.tag
            ),
            TraceKind::CmdReject => {
                let rev = if r.b == 0 { SpecRevision::Gen1 } else { SpecRevision::Gen2 };
                format!("CMD={} rejected: not in {:?}", self.mnemonic(resolve), rev)
            }
            TraceKind::CmcOp => format!(
                "op={} cmd={} af={} rsp_len={}",
                self.mnemonic(resolve),
                r.a,
                r.quad != 0,
                r.b
            ),
            TraceKind::PlanStage => {
                format!("plan: dev={} vaults={} items={}", r.dev, r.a, r.b)
            }
            TraceKind::SerialFallback => format!("serial fallback: dev={}", r.dev),
            TraceKind::CommitStage => format!("commit: dev={} vaults={}", r.dev, r.a),
            TraceKind::IdleSkip => format!("idle skip: from={} len={}", r.a, r.b),
            TraceKind::SanitizerAudit => format!("sanitizer: violations={}", r.a),
            TraceKind::Checkpoint => format!("checkpoint: cycle={}", r.a),
            TraceKind::HopRqst => format!(
                "hop rqst: dev={} -> dev={} link={} tag={} arrives={}",
                r.dev, r.a, r.link, r.tag, r.b
            ),
            TraceKind::HopRsp => format!(
                "hop rsp: dev={} -> dev={} link={} tag={} arrives={}",
                r.dev, r.a, r.link, r.tag, r.b
            ),
        }
    }

    /// Renders the full historic trace line for this record.
    pub fn render_line<F: Fn(u16) -> String>(&self, resolve: F) -> String {
        format!(
            "HMCSIM_TRACE : {} : {} : {}",
            self.cycle,
            self.kind.class_tag(),
            self.render_detail(resolve)
        )
    }
}

/// A shared, deduplicating table of dynamic strings referenced by
/// [`CmdRef::Name`]: registered CMC operation names and link-error
/// texts. All producers are cold paths; the hot data path never
/// interns.
#[derive(Debug, Clone, Default)]
pub(crate) struct NameTable {
    inner: Arc<Mutex<NameInner>>,
}

#[derive(Debug, Default)]
struct NameInner {
    names: Vec<String>,
    index: std::collections::HashMap<String, u16>,
}

impl NameTable {
    /// Interns `name`, returning its stable index. A full table (more
    /// than `u16::MAX - 1` distinct names — never in practice)
    /// returns the `u16::MAX` sentinel, which resolves to `"?"`.
    pub(crate) fn intern(&self, name: &str) -> u16 {
        let mut inner = self.inner.lock().expect("name table lock");
        if let Some(&idx) = inner.index.get(name) {
            return idx;
        }
        let idx = inner.names.len();
        if idx >= u16::MAX as usize {
            return u16::MAX;
        }
        inner.names.push(name.to_owned());
        inner.index.insert(name.to_owned(), idx as u16);
        idx as u16
    }

    /// The string behind `idx` (`"?"` for unknown indices).
    pub(crate) fn resolve(&self, idx: u16) -> String {
        self.inner
            .lock()
            .expect("name table lock")
            .names
            .get(idx as usize)
            .cloned()
            .unwrap_or_else(|| "?".to_owned())
    }

    /// All interned names, in index order.
    pub(crate) fn snapshot(&self) -> Vec<String> {
        self.inner.lock().expect("name table lock").names.clone()
    }

    /// Replaces the table contents (snapshot restore).
    pub(crate) fn replace(&self, names: Vec<String>) {
        let mut inner = self.inner.lock().expect("name table lock");
        inner.index = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u16))
            .collect();
        inner.names = names;
    }
}

/// Default per-lane flight-recorder capacity.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

#[derive(Debug, Default)]
struct LaneBuf {
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

#[derive(Debug)]
struct FlightInner {
    capacity: usize,
    lanes: [LaneBuf; 5],
}

/// The always-on causal flight recorder: one fixed-capacity ring of
/// raw [`TraceRecord`]s per [`FlightLane`], with a drop counter per
/// lane. Attached to a [`Tracer`] it captures every event class
/// regardless of the level mask — no text is formatted, so it is
/// cheap enough to leave on for whole runs. Handles are `Arc`-shared
/// clones (like [`TraceRing`]), so the sanitizer, the fuzzer and the
/// CLI can read the timeline the simulation wrote.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<FlightInner>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder retaining the most recent `per_lane_capacity`
    /// records in each lane.
    pub fn new(per_lane_capacity: usize) -> Self {
        FlightRecorder {
            inner: Arc::new(Mutex::new(FlightInner {
                capacity: per_lane_capacity.max(1),
                lanes: Default::default(),
            })),
        }
    }

    /// Per-lane ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("flight recorder lock").capacity
    }

    /// Total records currently retained across all lanes.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().expect("flight recorder lock");
        inner.lanes.iter().map(|l| l.records.len()).sum()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records dropped (evicted) across all lanes.
    pub fn dropped(&self) -> u64 {
        let inner = self.inner.lock().expect("flight recorder lock");
        inner.lanes.iter().map(|l| l.dropped).sum()
    }

    /// Clears all lanes and drop counters.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("flight recorder lock");
        for lane in &mut inner.lanes {
            lane.records.clear();
            lane.dropped = 0;
        }
    }

    pub(crate) fn record(&self, rec: TraceRecord) {
        let mut inner = self.inner.lock().expect("flight recorder lock");
        let capacity = inner.capacity;
        let lane = &mut inner.lanes[rec.kind.lane().index()];
        if lane.records.len() >= capacity {
            lane.records.pop_front();
            lane.dropped += 1;
        }
        lane.records.push_back(rec);
    }

    /// Point-in-time copy of the retained timeline; `names` is the
    /// matching name table (use [`Tracer::flight_snapshot`], which
    /// pairs them for you).
    pub(crate) fn snapshot_with_names(&self, names: Vec<String>) -> FlightSnapshot {
        let inner = self.inner.lock().expect("flight recorder lock");
        FlightSnapshot {
            capacity: inner.capacity,
            lanes: FlightLane::ALL
                .iter()
                .map(|&lane| {
                    let buf = &inner.lanes[lane.index()];
                    FlightLaneSnapshot {
                        name: lane.name().to_owned(),
                        records: buf.records.iter().copied().collect(),
                        dropped: buf.dropped,
                    }
                })
                .collect(),
            names,
        }
    }

    /// Replaces the retained timeline with a snapshot's (checkpoint
    /// restore). Lanes beyond the snapshot's (never, at schema v1)
    /// are cleared.
    pub(crate) fn restore(&self, snap: &FlightSnapshot) {
        let mut inner = self.inner.lock().expect("flight recorder lock");
        inner.capacity = snap.capacity.max(1);
        for (i, lane) in inner.lanes.iter_mut().enumerate() {
            match snap.lanes.get(i) {
                Some(s) => {
                    lane.records = s.records.iter().copied().collect();
                    lane.dropped = s.dropped;
                }
                None => {
                    lane.records.clear();
                    lane.dropped = 0;
                }
            }
        }
    }
}

/// One lane of a [`FlightSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightLaneSnapshot {
    /// Lane name (see [`FlightLane::name`]).
    pub name: String,
    /// Retained records, oldest first.
    pub records: Vec<TraceRecord>,
    /// Records evicted from this lane before the snapshot.
    pub dropped: u64,
}

/// A point-in-time copy of a [`FlightRecorder`]'s retained timeline
/// plus the name table its records reference. Embedded in
/// [`crate::SimSnapshot`]s (excluded from the fingerprint — the
/// recorder is an observer), in sanitizer forensic dumps and in
/// hmcfuzz reproducers; exportable to Perfetto via
/// [`crate::perfetto`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlightSnapshot {
    /// Per-lane ring capacity at capture time.
    pub capacity: usize,
    /// The lanes, in [`FlightLane::ALL`] order.
    pub lanes: Vec<FlightLaneSnapshot>,
    /// Interned-name table referenced by [`CmdRef::Name`] records.
    pub names: Vec<String>,
}

impl FlightSnapshot {
    /// Total records across all lanes.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.records.len()).sum()
    }

    /// True when the timeline is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All records merged across lanes, sorted by cycle (stable: lane
    /// order breaks ties), with the resolver needed to render them.
    pub fn merged(&self) -> Vec<TraceRecord> {
        let mut all: Vec<TraceRecord> =
            self.lanes.iter().flat_map(|l| l.records.iter().copied()).collect();
        all.sort_by_key(|r| r.cycle);
        all
    }

    /// Resolves an interned name index against this snapshot's table.
    pub fn resolve(&self, idx: u16) -> String {
        self.names.get(idx as usize).cloned().unwrap_or_else(|| "?".to_owned())
    }

    /// The retained timeline rendered as historic text trace lines,
    /// merged across lanes in cycle order.
    pub fn lines(&self) -> Vec<String> {
        self.merged().iter().map(|r| r.render_line(|i| self.resolve(i))).collect()
    }
}

/// Default [`TraceBuffer`] capacity (lines retained before dropping).
pub const DEFAULT_TRACE_BUFFER_CAPACITY: usize = 1 << 20;

#[derive(Debug)]
struct BufferInner {
    lines: Vec<String>,
    capacity: usize,
    dropped: u64,
}

/// A shared in-memory trace sink, handy for tests and analysis.
///
/// The buffer is bounded: once `capacity` lines are retained, further
/// lines are counted in [`TraceBuffer::dropped`] instead of growing
/// the buffer without limit (long traced runs used to OOM here). The
/// default capacity keeps every line of any test-sized run.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    inner: Arc<Mutex<BufferInner>>,
}

impl Default for TraceBuffer {
    fn default() -> Self {
        TraceBuffer::with_capacity(DEFAULT_TRACE_BUFFER_CAPACITY)
    }
}

impl TraceBuffer {
    /// Creates an empty buffer with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer retaining at most `capacity` lines.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceBuffer {
            inner: Arc::new(Mutex::new(BufferInner {
                lines: Vec::new(),
                capacity: capacity.max(1),
                dropped: 0,
            })),
        }
    }

    /// Snapshot of all recorded lines.
    pub fn lines(&self) -> Vec<String> {
        self.inner.lock().expect("trace buffer lock").lines.clone()
    }

    /// Number of recorded lines.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace buffer lock").lines.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lines dropped because the buffer was at capacity.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("trace buffer lock").dropped
    }

    /// Lines containing `needle`.
    pub fn grep(&self, needle: &str) -> Vec<String> {
        self.lines()
            .into_iter()
            .filter(|l| l.contains(needle))
            .collect()
    }

    fn record(&self, line: String) {
        let mut inner = self.inner.lock().expect("trace buffer lock");
        if inner.lines.len() >= inner.capacity {
            inner.dropped += 1;
        } else {
            inner.lines.push(line);
        }
    }
}

/// A bounded ring buffer of recent trace lines, shared between the
/// tracer and the sanitizer's forensic-dump machinery. Unlike the
/// sinks, an attached ring captures *every* event class regardless of
/// the tracer's level mask, so a forensic dump carries the events
/// leading up to a violation even when user-facing tracing is off.
#[derive(Debug, Clone, Default)]
pub struct TraceRing {
    inner: Arc<Mutex<RingInner>>,
}

#[derive(Debug, Default)]
struct RingInner {
    lines: VecDeque<String>,
    capacity: usize,
}

impl TraceRing {
    /// Creates a ring holding the most recent `capacity` lines.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            inner: Arc::new(Mutex::new(RingInner {
                lines: VecDeque::with_capacity(capacity),
                capacity: capacity.max(1),
            })),
        }
    }

    /// Snapshot of the retained lines, oldest first.
    pub fn lines(&self) -> Vec<String> {
        let inner = self.inner.lock().expect("trace ring lock");
        inner.lines.iter().cloned().collect()
    }

    /// Number of retained lines.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace ring lock").lines.len()
    }

    /// True when nothing has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn record(&self, line: &str) {
        let mut inner = self.inner.lock().expect("trace ring lock");
        if inner.lines.len() >= inner.capacity {
            inner.lines.pop_front();
        }
        inner.lines.push_back(line.to_owned());
    }
}

enum Sink {
    Null,
    Buffer(TraceBuffer),
    Writer(Box<dyn Write + Send>),
}

impl fmt::Debug for Sink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sink::Null => f.write_str("Sink::Null"),
            Sink::Buffer(_) => f.write_str("Sink::Buffer"),
            Sink::Writer(_) => f.write_str("Sink::Writer"),
        }
    }
}

/// The trace recorder attached to a simulation context.
///
/// [`Tracer::emit`] is the single emission path: every structured
/// [`TraceRecord`] first lands in the attached [`FlightRecorder`] (if
/// any, unformatted), then is rendered to text at most once and fanned
/// out to the forensic [`TraceRing`] (every class) and the level-masked
/// sink.
#[derive(Debug)]
pub struct Tracer {
    level: TraceLevel,
    sink: Sink,
    /// Optional forensic ring; captures all classes when attached.
    ring: Option<TraceRing>,
    /// Optional structured flight recorder; captures all classes.
    flight: Option<FlightRecorder>,
    names: NameTable,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer {
            level: TraceLevel::NONE,
            sink: Sink::Null,
            ring: None,
            flight: None,
            names: NameTable::default(),
        }
    }

    /// Traces into a shared in-memory buffer.
    pub fn to_buffer(level: TraceLevel, buffer: TraceBuffer) -> Self {
        Tracer { sink: Sink::Buffer(buffer), level, ..Tracer::disabled() }
    }

    /// Traces into any writer (e.g. a file), one line per event.
    pub fn to_writer(level: TraceLevel, writer: Box<dyn Write + Send>) -> Self {
        Tracer { sink: Sink::Writer(writer), level, ..Tracer::disabled() }
    }

    /// Attaches a forensic ring that captures every event class
    /// independently of the level mask.
    pub fn attach_ring(&mut self, ring: TraceRing) {
        self.ring = Some(ring);
    }

    /// Detaches the forensic ring, if any.
    pub fn detach_ring(&mut self) {
        self.ring = None;
    }

    /// Attaches a flight recorder that captures every event class as
    /// raw structured records, independently of the level mask.
    pub fn attach_flight(&mut self, flight: FlightRecorder) {
        self.flight = Some(flight);
    }

    /// Detaches the flight recorder, if any.
    pub fn detach_flight(&mut self) {
        self.flight = None;
    }

    /// The attached flight recorder, if any.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// Adopts the observation stream of `other`: its forensic ring,
    /// flight recorder and name table. [`crate::HmcSim::set_tracer`]
    /// uses this so replacing the tracer never silently drops the
    /// sanitizer's ring or the flight recorder's timeline (whose
    /// records reference the old name table).
    pub(crate) fn adopt_stream(&mut self, other: &Tracer) {
        if self.ring.is_none() {
            self.ring = other.ring.clone();
        }
        if self.flight.is_none() {
            self.flight = other.flight.clone();
        }
        self.names = other.names.clone();
    }

    /// The active level mask.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Replaces the level mask.
    pub fn set_level(&mut self, level: TraceLevel) {
        self.level = level;
    }

    /// Interns a dynamic string (CMC names, link-error texts) for
    /// [`CmdRef::Name`] records. Cold paths only.
    pub(crate) fn intern(&self, name: &str) -> u16 {
        self.names.intern(name)
    }

    /// A point-in-time copy of the flight recorder's timeline, paired
    /// with the name table its records reference; `None` when no
    /// recorder is attached.
    pub fn flight_snapshot(&self) -> Option<FlightSnapshot> {
        self.flight
            .as_ref()
            .map(|f| f.snapshot_with_names(self.names.snapshot()))
    }

    /// Restores a flight snapshot into the attached recorder (no-op
    /// without one) and rebases the name table to match its records.
    pub(crate) fn restore_flight(&mut self, snap: &FlightSnapshot) {
        if let Some(f) = &self.flight {
            f.restore(snap);
            self.names.replace(snap.names.clone());
        }
    }

    /// True when events of `class` would be recorded.
    #[inline]
    pub fn enabled(&self, class: TraceLevel) -> bool {
        self.level.contains(class) && !matches!(self.sink, Sink::Null)
    }

    /// True when events of `class` reach *any* destination — the sink
    /// (level permitting), an attached forensic ring or an attached
    /// flight recorder (both capture every class). The parallel
    /// engine uses this to decide whether worker lanes must record
    /// deferred events at all; when it is false for CMD events the
    /// fast path skips them entirely, exactly like [`Tracer::emit`]'s
    /// early return.
    #[inline]
    pub fn captures(&self, class: TraceLevel) -> bool {
        self.enabled(class) || self.ring.is_some() || self.flight.is_some()
    }

    /// Replays deferred records produced on a worker lane, in the
    /// order given. Each record goes through [`Tracer::emit`], so
    /// level masking, ring capture and flight capture behave exactly
    /// as for live events.
    pub(crate) fn replay(&mut self, records: &[TraceRecord]) {
        for rec in records {
            self.emit(*rec);
        }
    }

    /// Emits one structured record — the single emission path.
    ///
    /// The flight recorder receives the raw record (no formatting);
    /// the text line is rendered at most once, fanned out to the
    /// forensic ring (every class) and the sink (level permitting).
    pub fn emit(&mut self, rec: TraceRecord) {
        if let Some(flight) = &self.flight {
            flight.record(rec);
        }
        let sink_on = self.enabled(rec.kind.class());
        let ring_on = self.ring.is_some();
        if !sink_on && !ring_on {
            return;
        }
        let names = &self.names;
        let line = rec.render_line(|idx| names.resolve(idx));
        if let Some(ring) = &self.ring {
            ring.record(&line);
        }
        if !sink_on {
            return;
        }
        match &mut self.sink {
            Sink::Null => {}
            Sink::Buffer(buf) => buf.record(line),
            Sink::Writer(w) => {
                let _ = writeln!(w, "{line}");
            }
        }
    }

    /// Lines the buffer sink dropped at capacity (0 for other sinks).
    pub fn sink_dropped(&self) -> u64 {
        match &self.sink {
            Sink::Buffer(buf) => buf.dropped(),
            _ => 0,
        }
    }

    /// Records one free-form event line in HMC-Sim's trace format:
    /// `HMCSIM_TRACE : <cycle> : <CLASS> : <detail>`.
    ///
    /// This is the raw text view, kept for ad-hoc annotations; it
    /// feeds the sink (level permitting) and the forensic ring, but
    /// **not** the flight recorder — structured instrumentation goes
    /// through [`Tracer::emit`].
    pub fn event(&mut self, class: TraceLevel, cycle: u64, tag: &str, detail: fmt::Arguments<'_>) {
        let sink_on = self.enabled(class);
        let ring_on = self.ring.is_some();
        if !sink_on && !ring_on {
            return;
        }
        let line = format!("HMCSIM_TRACE : {cycle} : {tag} : {detail}");
        if let Some(ring) = &self.ring {
            ring.record(&line);
        }
        if !sink_on {
            return;
        }
        match &mut self.sink {
            Sink::Null => {}
            Sink::Buffer(buf) => buf.record(line),
            Sink::Writer(w) => {
                let _ = writeln!(w, "{line}");
            }
        }
    }
}

/// A shard-local trace accumulator. Worker lanes cannot touch the
/// shared [`Tracer`], so they record raw [`TraceRecord`]s into one of
/// these; the commit phase replays each vault's records in vault
/// order, reproducing the sequential emission order byte for byte.
/// Records are `Copy` — a worker lane never formats text or allocates
/// per event; when `capture` is false it does not even store them
/// (the common case: tracing off, no ring, no flight recorder).
#[derive(Debug, Default)]
pub(crate) struct EventBuffer {
    capture: bool,
    records: Vec<TraceRecord>,
}

impl EventBuffer {
    pub(crate) fn new(capture: bool) -> Self {
        EventBuffer { capture, records: Vec::new() }
    }

    #[inline]
    pub(crate) fn emit(&mut self, rec: TraceRecord) {
        if self.capture {
            self.records.push(rec);
        }
    }

    #[cfg(test)]
    pub(crate) fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consumes the buffer, yielding the captured records for the
    /// commit phase.
    pub(crate) fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }
}

/// Either the live tracer (sequential path) or a deferred buffer
/// (worker lanes): the single execution core in `device.rs` writes
/// through this so both paths share one implementation.
pub(crate) enum TraceLane<'a> {
    /// Records go straight to the simulation's tracer.
    Live(&'a mut Tracer),
    /// Records are buffered for ordered replay at commit.
    Deferred(&'a mut EventBuffer),
}

impl TraceLane<'_> {
    #[inline]
    pub(crate) fn emit(&mut self, rec: TraceRecord) {
        match self {
            TraceLane::Live(t) => t.emit(rec),
            TraceLane::Deferred(b) => b.emit(rec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd_record(cycle: u64) -> TraceRecord {
        TraceRecord {
            dev: 0,
            quad: 1,
            vault: 5,
            bank: 2,
            tag: 7,
            cmd: CmdRef::Rqst(HmcRqst::Rd16),
            a: 0x1000,
            ..TraceRecord::new(cycle, TraceKind::Cmd)
        }
    }

    #[test]
    fn deferred_records_replay_in_order() {
        let buf = TraceBuffer::new();
        let mut t = Tracer::to_buffer(TraceLevel::CMD, buf.clone());
        let mut lane = EventBuffer::new(t.captures(TraceLevel::CMD));
        lane.emit(cmd_record(5));
        lane.emit(TraceRecord { tag: 8, ..cmd_record(5) });
        t.replay(lane.records());
        let lines = buf.lines();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "HMCSIM_TRACE : 5 : RQST : CMD=RD16 CUB=0 QUAD=1 VAULT=5 BANK=2 ADDR=0x1000 TAG=7"
        );
        assert!(lines[1].ends_with("TAG=8"));
    }

    #[test]
    fn uncaptured_buffer_skips_storage() {
        let mut lane = EventBuffer::new(false);
        lane.emit(cmd_record(1));
        assert!(lane.records().is_empty());
    }

    #[test]
    fn captures_tracks_sink_ring_and_flight() {
        let mut t = Tracer::disabled();
        assert!(!t.captures(TraceLevel::CMD));
        t.attach_ring(TraceRing::new(4));
        assert!(t.captures(TraceLevel::CMD), "ring captures every class");
        t.detach_ring();
        assert!(!t.captures(TraceLevel::CMD));
        t.attach_flight(FlightRecorder::new(4));
        assert!(t.captures(TraceLevel::CMD), "flight captures every class");
        let t2 = Tracer::to_buffer(TraceLevel::CMD, TraceBuffer::new());
        assert!(t2.captures(TraceLevel::CMD));
        assert!(!t2.captures(TraceLevel::BANK));
    }

    #[test]
    fn level_mask_algebra() {
        let m = TraceLevel::CMD | TraceLevel::STALL;
        assert!(m.contains(TraceLevel::CMD));
        assert!(m.contains(TraceLevel::STALL));
        assert!(!m.contains(TraceLevel::BANK));
        assert!(TraceLevel::ALL.contains(TraceLevel::POWER));
        assert!(TraceLevel::ALL.contains(TraceLevel::ENGINE));
        assert!(!TraceLevel::NONE.contains(TraceLevel::CMD));
    }

    #[test]
    fn buffer_records_enabled_events_only() {
        let buf = TraceBuffer::new();
        let mut t = Tracer::to_buffer(TraceLevel::CMD, buf.clone());
        t.emit(TraceRecord {
            cmd: CmdRef::Name(t.intern("INC8")),
            vault: 3,
            ..TraceRecord::new(10, TraceKind::Cmd)
        });
        t.emit(TraceRecord { vault: 1, link: 0, ..TraceRecord::new(11, TraceKind::XbarRspFull) });
        assert_eq!(buf.len(), 1);
        assert_eq!(
            buf.lines()[0],
            "HMCSIM_TRACE : 10 : RQST : CMD=INC8 CUB=0 QUAD=0 VAULT=3 BANK=0 ADDR=0x0 TAG=0"
        );
        assert_eq!(buf.grep("INC8").len(), 1);
        assert!(!buf.is_empty());
    }

    #[test]
    fn bounded_buffer_counts_drops() {
        let buf = TraceBuffer::with_capacity(2);
        let mut t = Tracer::to_buffer(TraceLevel::ALL, buf.clone());
        for i in 0..5 {
            t.emit(cmd_record(i));
        }
        assert_eq!(buf.len(), 2, "capacity bounds retained lines");
        assert_eq!(buf.dropped(), 3, "overflow is counted, not stored");
        assert_eq!(t.sink_dropped(), 3);
        assert!(buf.lines()[0].contains(" 0 "), "oldest lines are kept");
    }

    #[test]
    fn disabled_tracer_is_silent() {
        let mut t = Tracer::disabled();
        assert!(!t.enabled(TraceLevel::CMD));
        t.emit(cmd_record(0));
        t.event(TraceLevel::CMD, 0, "RQST", format_args!("dropped"));
    }

    #[test]
    fn ring_captures_all_classes_and_bounds_length() {
        let ring = TraceRing::new(3);
        let mut t = Tracer::disabled();
        t.attach_ring(ring.clone());
        // The level mask is NONE, but the ring still captures events.
        for i in 0..5 {
            t.emit(TraceRecord { vault: i as u16, tag: i as u16, ..TraceRecord::new(i, TraceKind::Poison) });
        }
        assert_eq!(ring.len(), 3, "ring retains only the newest lines");
        let lines = ring.lines();
        assert!(lines[0].contains("vault=2"));
        assert!(lines[2].contains("vault=4"));
        t.detach_ring();
        t.emit(TraceRecord::new(9, TraceKind::Poison));
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn flight_recorder_captures_raw_records_per_lane() {
        let flight = FlightRecorder::new(2);
        let mut t = Tracer::disabled();
        t.attach_flight(flight.clone());
        // Bank lane: three Cmd records into a 2-slot ring.
        for i in 0..3 {
            t.emit(cmd_record(i));
        }
        // Host lane: one delivery.
        t.emit(TraceRecord { tag: 7, a: 3, link: 2, ..TraceRecord::new(9, TraceKind::Deliver) });
        assert_eq!(flight.len(), 3);
        assert_eq!(flight.dropped(), 1, "bank lane evicted one record");
        let snap = t.flight_snapshot().unwrap();
        assert_eq!(snap.capacity, 2);
        assert_eq!(snap.lanes.len(), 5);
        let bank = snap.lanes.iter().find(|l| l.name == "bank").unwrap();
        assert_eq!(bank.records.len(), 2);
        assert_eq!(bank.records[0].cycle, 1, "oldest retained after eviction");
        assert_eq!(bank.dropped, 1);
        let lines = snap.lines();
        assert_eq!(lines.last().unwrap(), "HMCSIM_TRACE : 9 : LATENCY : tag=7 lat=3 link=2");
        t.detach_flight();
        t.emit(cmd_record(10));
        assert_eq!(flight.len(), 3, "detached recorder sees nothing");
    }

    #[test]
    fn flight_snapshot_restores_byte_identically() {
        let flight = FlightRecorder::new(4);
        let mut t = Tracer::disabled();
        t.attach_flight(flight.clone());
        let name = t.intern("hmc_lock");
        t.emit(TraceRecord {
            cmd: CmdRef::Name(name),
            a: 20,
            b: 1,
            quad: 1,
            ..TraceRecord::new(3, TraceKind::CmcOp)
        });
        let snap = t.flight_snapshot().unwrap();
        assert_eq!(
            snap.lines(),
            vec!["HMCSIM_TRACE : 3 : CMC : op=hmc_lock cmd=20 af=true rsp_len=1".to_string()]
        );
        flight.clear();
        assert!(flight.is_empty());
        t.restore_flight(&snap);
        assert_eq!(t.flight_snapshot().unwrap(), snap);
    }

    #[test]
    fn renders_match_legacy_formats() {
        let cases: Vec<(TraceRecord, &str)> = vec![
            (
                TraceRecord { dev: 0, link: 2, a: 17, ..TraceRecord::new(4, TraceKind::LinkRetry) },
                "HMCSIM_TRACE : 4 : RETRY : link error injected: dev=0 link=2, replay at 17",
            ),
            (
                TraceRecord { link: 1, ..TraceRecord::new(8, TraceKind::LinkDown) },
                "HMCSIM_TRACE : 8 : FAULT : kind=LINKDOWN link=1",
            ),
            (
                TraceRecord { vault: 9, tag: 3, a: 0x0b, ..TraceRecord::new(2, TraceKind::VaultFault) },
                "HMCSIM_TRACE : 2 : FAULT : kind=VAULT vault=9 tag=3 errstat=0xb",
            ),
            (
                TraceRecord { link: 0, vault: 12, a: 4, ..TraceRecord::new(6, TraceKind::XbarToVault) },
                "HMCSIM_TRACE : 6 : QUEUE : xbar->vault: link=0 vault=12 occ=4",
            ),
            (
                TraceRecord { vault: 7, bank: 3, ..TraceRecord::new(1, TraceKind::BankBusy) },
                "HMCSIM_TRACE : 1 : BANK : bank busy: vault=7 bank=3",
            ),
            (
                TraceRecord {
                    cmd: CmdRef::Rqst(HmcRqst::Cmc(20)),
                    b: 1,
                    ..TraceRecord::new(5, TraceKind::CmdReject)
                },
                "HMCSIM_TRACE : 5 : RQST : CMD=CMC20 rejected: not in Gen2",
            ),
            (
                TraceRecord { cmd: CmdRef::Inactive(33), ..TraceRecord::new(5, TraceKind::Cmd) },
                "HMCSIM_TRACE : 5 : RQST : CMD=CMC33(inactive) CUB=0 QUAD=0 VAULT=0 BANK=0 ADDR=0x0 TAG=0",
            ),
            (
                TraceRecord { a: 100, b: 40, ..TraceRecord::new(100, TraceKind::IdleSkip) },
                "HMCSIM_TRACE : 100 : ENGINE : idle skip: from=100 len=40",
            ),
        ];
        for (rec, want) in cases {
            assert_eq!(rec.render_line(|_| "?".into()), want);
            assert_eq!(rec.kind.lane().name(), rec.kind.lane().name());
        }
    }

    #[test]
    fn writer_sink_emits_lines() {
        let cursor: Vec<u8> = Vec::new();
        let shared = Arc::new(Mutex::new(cursor));
        struct SharedWriter(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut t = Tracer::to_writer(
            TraceLevel::LATENCY,
            Box::new(SharedWriter(shared.clone())),
        );
        t.emit(TraceRecord { tag: 7, a: 3, link: 0, ..TraceRecord::new(99, TraceKind::Deliver) });
        let out = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        assert_eq!(out, "HMCSIM_TRACE : 99 : LATENCY : tag=7 lat=3 link=0\n");
    }

    #[test]
    fn name_table_interns_and_round_trips() {
        let names = NameTable::default();
        let a = names.intern("hmc_lock");
        let b = names.intern("hmc_unlock");
        assert_eq!(names.intern("hmc_lock"), a, "dedup");
        assert_ne!(a, b);
        assert_eq!(names.resolve(a), "hmc_lock");
        assert_eq!(names.resolve(999), "?");
        let snap = names.snapshot();
        let other = NameTable::default();
        other.replace(snap);
        assert_eq!(other.resolve(b), "hmc_unlock");
        assert_eq!(other.intern("hmc_lock"), a, "index survives replace");
    }
}
