//! The simulation context — the `hmc_sim_t` equivalent.
//!
//! [`HmcSim`] owns the devices, the global cycle counter, the host
//! receive buffers, per-link tag pools and the tracer, and exposes the
//! HMC-Sim user API: `send`, `recv`, `clock`, `load_cmc`, the JTAG
//! register access path and statistics.

use crate::config::{DeviceConfig, ExecMode, LinkTopology, SimConfig, SkipMode};
use crate::device::{Device, Egress, TrackedRequest, TrackedResponse};
use crate::events::EventHeap;
use crate::fault::LinkErrorMode;
use crate::link::{LinkConfig, LinkControl, LinkStats};
use crate::parallel::{execute_vaults_parallel, WorkerPool};
use crate::power::PowerReport;
use crate::regs::{REG_GRLL, REG_LRLL};
use crate::stats::DeviceStats;
use crate::timing::{TimingSelect, TimingStats};
use crate::topology::Topology;
use crate::trace::{FlightRecorder, FlightSnapshot, TraceKind, TraceLevel, TraceRecord, Tracer};
use hmc_cmc::{CmcOp, CmcRegistration};
use hmc_types::{Cub, Flit, HmcError, HmcRqst, Request, Response, Tag, TagPool};
use std::collections::{HashSet, VecDeque};

/// A packet crossing a fabric edge between devices.
#[derive(Debug, Clone)]
pub(crate) enum Transit {
    Rqst { from_dev: usize, to_dev: usize, link: usize, item: TrackedRequest, ready: u64 },
    Rsp { from_dev: usize, to_dev: usize, link: usize, item: TrackedResponse, ready: u64 },
}

impl Transit {
    /// The cycle this transit's hop latency elapses.
    pub(crate) fn ready(&self) -> u64 {
        match self {
            Transit::Rqst { ready, .. } | Transit::Rsp { ready, .. } => *ready,
        }
    }

    /// The directed fabric edge this transit travels.
    pub(crate) fn edge(&self) -> (usize, usize) {
        match self {
            Transit::Rqst { from_dev, to_dev, .. } | Transit::Rsp { from_dev, to_dev, .. } => {
                (*from_dev, *to_dev)
            }
        }
    }

    /// Rewrites the sender (used when restoring pre-fabric snapshots
    /// whose transits carried no sender).
    pub(crate) fn set_from_dev(&mut self, dev: usize) {
        match self {
            Transit::Rqst { from_dev, .. } | Transit::Rsp { from_dev, .. } => *from_dev = dev,
        }
    }
}

/// A packet held in the link-layer retry buffer after an injected
/// transmission error.
#[derive(Debug, Clone)]
pub(crate) struct RetryEntry {
    pub(crate) dev: usize,
    pub(crate) link: usize,
    pub(crate) item: TrackedRequest,
    pub(crate) ready: u64,
}

/// The HMC-Sim simulation context.
#[derive(Debug)]
pub struct HmcSim {
    pub(crate) config: SimConfig,
    pub(crate) devices: Vec<Device>,
    pub(crate) cycle: u64,
    pub(crate) host_rx: Vec<Vec<VecDeque<TrackedResponse>>>,
    pub(crate) tag_pools: Vec<Vec<TagPool>>,
    pub(crate) pool_tags: Vec<Vec<HashSet<u16>>>,
    /// The fabric wiring: routing tables and the directed edge list.
    pub(crate) topology: Topology,
    /// Inter-device transits, one queue per directed fabric edge (in
    /// [`Topology::edges`] order), each ordered by `(ready cycle,
    /// insertion)`. Committing edges in list order gives cross-device
    /// delivery a total order independent of execution mode, and the
    /// event-horizon engine reads each queue's earliest due cycle in
    /// O(1).
    pub(crate) transit_queues: Vec<EventHeap<Transit>>,
    pub(crate) links: Vec<Vec<LinkControl>>,
    /// Link-layer retry replays, ordered like [`HmcSim::in_transit`].
    pub(crate) retry_pending: EventHeap<RetryEntry>,
    /// Tags the host abandoned (timeout reclamation), keyed per
    /// device by `(entry_link, tag)`. The tag returns to its pool
    /// only when the stale response finally arrives, so a reused tag
    /// can never match a zombie response.
    pub(crate) zombie_tags: Vec<HashSet<(usize, u16)>>,
    pub(crate) tracer: Tracer,
    /// How stage 3 (vault execution) runs: the sequential reference
    /// path or the deterministic parallel engine.
    pub(crate) exec_mode: ExecMode,
    /// Lazily created worker pool for [`ExecMode::Parallel`]. Not
    /// part of simulation state: snapshots ignore it and
    /// [`HmcSim::set_exec_mode`] rebuilds it.
    pub(crate) pool: Option<WorkerPool>,
    /// Attached sanitizer (`None` = zero overhead beyond this check).
    pub(crate) sanitizer: Option<Box<crate::sanitizer::Sanitizer>>,
    /// Attached telemetry (`None` = off, the default: zero overhead
    /// beyond this check, and no telemetry state exists to perturb
    /// snapshots or fingerprints).
    pub(crate) telemetry: Option<Box<crate::telemetry::Telemetry>>,
    /// Whether `clock()` may compress provably-idle cycle runs.
    pub(crate) skip_mode: SkipMode,
    /// Per-cube cache for the skip engine's device-queue scan: `true`
    /// means that device's queues *may* hold packets and must be
    /// re-scanned before skipping. Set on injection into the device
    /// and on every full clock where the device ends with pending
    /// work; cleared when a scan proves its queues empty. A fully
    /// idle cube therefore contributes O(1) to the global horizon —
    /// idle-skip jumps never rescan quiet devices. Not simulation
    /// state — not snapshotted, never observable in results.
    dev_maybe_busy: Vec<bool>,
    /// Per-cube cached timing-backend event horizon (`None` = stale,
    /// must be recomputed; `Some(h)` = that device's earliest
    /// bank-availability change, with `Some(None)` meaning all its
    /// banks settled). A device's bank state only changes on full
    /// clocks where it held or received work, and on restores — both
    /// invalidate the cache alongside [`HmcSim::dev_maybe_busy`].
    /// Not simulation state.
    dev_timing_horizon: Vec<Option<Option<u64>>>,
}

impl HmcSim {
    /// Creates a single-device context.
    pub fn new(device: DeviceConfig) -> Result<Self, HmcError> {
        Self::with_config(SimConfig::single(device))
    }

    /// Creates a context from a full simulation configuration.
    pub fn with_config(config: SimConfig) -> Result<Self, HmcError> {
        config.validate()?;
        let topology = Topology::new(config.topology, config.devices.len())?;
        let timing = config.timing.resolve_env()?;
        let devices = config
            .devices
            .iter()
            .enumerate()
            .map(|(i, c)| Device::with_timing(i, c.clone(), timing))
            .collect::<Result<Vec<_>, _>>()?;
        let host_rx = config
            .devices
            .iter()
            .map(|c| (0..c.links).map(|_| VecDeque::new()).collect())
            .collect();
        let tag_pools = config
            .devices
            .iter()
            .map(|c| (0..c.links).map(|_| TagPool::full()).collect())
            .collect();
        let pool_tags = config
            .devices
            .iter()
            .map(|c| (0..c.links).map(|_| HashSet::new()).collect())
            .collect();
        let links = config
            .devices
            .iter()
            .map(|c| {
                // The fault plan's deterministic mode absorbs the
                // legacy `error_period` knob: an explicit EveryNth
                // plan overrides the link configuration.
                let link_config = match c.fault.link_error {
                    LinkErrorMode::EveryNth(n) => {
                        LinkConfig { error_period: Some(n), ..c.link_config }
                    }
                    _ => c.link_config,
                };
                (0..c.links).map(|_| LinkControl::new(link_config)).collect()
            })
            .collect();
        let zombie_tags = config.devices.iter().map(|_| HashSet::new()).collect();
        let exec_mode = config.exec_mode.resolve_env()?;
        let skip_mode = config.skip_mode.resolve_env()?;
        let n = devices.len();
        let transit_queues = (0..topology.edge_count()).map(|_| EventHeap::new()).collect();
        let mut sim = HmcSim {
            config,
            devices,
            cycle: 0,
            host_rx,
            tag_pools,
            pool_tags,
            topology,
            transit_queues,
            links,
            retry_pending: EventHeap::new(),
            zombie_tags,
            tracer: Tracer::disabled(),
            exec_mode,
            pool: None,
            sanitizer: None,
            telemetry: None,
            skip_mode,
            dev_maybe_busy: vec![true; n],
            dev_timing_horizon: vec![None; n],
        };
        if sim.config.sanitizer.enabled {
            sim.enable_sanitizer(sim.config.sanitizer.clone());
        }
        if sim.config.telemetry.enabled {
            sim.enable_telemetry(sim.config.telemetry.clone());
        }
        Ok(sim)
    }

    /// The current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of devices in the context.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// A device's configuration.
    pub fn device_config(&self, dev: usize) -> Result<&DeviceConfig, HmcError> {
        Ok(self.device(dev)?.config())
    }

    fn device(&self, dev: usize) -> Result<&Device, HmcError> {
        self.devices.get(dev).ok_or(HmcError::InvalidDevice(dev))
    }

    fn device_mut(&mut self, dev: usize) -> Result<&mut Device, HmcError> {
        self.devices.get_mut(dev).ok_or(HmcError::InvalidDevice(dev))
    }

    /// Attaches a tracer. An active sanitizer's forensic trace ring,
    /// an attached flight recorder and the interned-name table all
    /// carry over to the new tracer, so swapping the text sink never
    /// truncates the structured observation stream.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        let old = std::mem::replace(&mut self.tracer, tracer);
        self.tracer.adopt_stream(&old);
        if let Some(ring) = self.sanitizer.as_ref().and_then(|s| s.ring.clone()) {
            self.tracer.attach_ring(ring);
        }
    }

    /// Enables the flight recorder: a fixed-capacity, per-lane ring of
    /// structured [`TraceRecord`]s that captures every packet
    /// lifecycle edge and engine span regardless of the trace level.
    /// Returns a handle sharing the recorder's storage (snapshots can
    /// be taken from either side). Zero observable perturbation: the
    /// recorder never changes `state_fingerprint()`.
    pub fn enable_flight_recorder(&mut self, per_lane_capacity: usize) -> FlightRecorder {
        let recorder = FlightRecorder::new(per_lane_capacity);
        self.tracer.attach_flight(recorder.clone());
        recorder
    }

    /// Attaches an existing flight-recorder handle (e.g. one shared
    /// with an external observer).
    pub fn attach_flight_recorder(&mut self, recorder: FlightRecorder) {
        self.tracer.attach_flight(recorder);
    }

    /// Detaches the flight recorder, if any.
    pub fn disable_flight_recorder(&mut self) {
        self.tracer.detach_flight();
    }

    /// A point-in-time copy of the flight recorder's timeline, or
    /// `None` when no recorder is attached.
    pub fn flight_snapshot(&self) -> Option<FlightSnapshot> {
        self.tracer.flight_snapshot()
    }

    /// Adjusts the trace level of the attached tracer.
    pub fn set_trace_level(&mut self, level: TraceLevel) {
        self.tracer.set_level(level);
    }

    /// The effective execution mode (after environment resolution).
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Switches the stage-3 execution mode. Takes effect on the next
    /// `clock()`; an existing worker pool is torn down (and rebuilt
    /// lazily at the new width). Both modes produce bit-identical
    /// simulation state, so switching mid-run is safe.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
        self.pool = None;
    }

    /// The effective skip mode (after environment resolution).
    pub fn skip_mode(&self) -> SkipMode {
        self.skip_mode
    }

    /// Switches idle-cycle skipping. Takes effect on the next
    /// `clock()`; both settings produce bit-identical simulation
    /// state, so switching mid-run is safe.
    pub fn set_skip_mode(&mut self, mode: SkipMode) {
        self.skip_mode = mode;
        self.mark_fabric_busy();
    }

    /// The effective bank-timing backend (after environment
    /// resolution; uniform across devices unless set per device).
    pub fn timing_select(&self) -> TimingSelect {
        self.devices.first().map(|d| d.timing_select()).unwrap_or_default()
    }

    /// A device's timing-backend observation counters (latency-class
    /// histograms; divergence record under
    /// [`TimingSelect::Validated`]).
    pub fn timing_stats(&self, dev: usize) -> Result<&TimingStats, HmcError> {
        Ok(self.device(dev)?.timing_stats())
    }

    /// Switches every device's bank-timing backend, resetting the
    /// backends' observation counters (bank state proper, and thus the
    /// state fingerprint, is untouched). Takes effect on the next
    /// `clock()`.
    pub fn set_timing_model(&mut self, select: TimingSelect) {
        for dev in &mut self.devices {
            dev.set_timing_model(select);
        }
        self.mark_fabric_busy();
    }

    /// Invalidates every device's skip-engine caches (state was
    /// mutated outside the clock, e.g. a snapshot restore).
    pub(crate) fn mark_fabric_busy(&mut self) {
        self.dev_maybe_busy.fill(true);
        self.dev_timing_horizon.fill(None);
    }

    /// Invalidates one device's skip-engine caches (a packet entered
    /// that device's queues outside the full clock).
    fn mark_device_busy(&mut self, dev: usize) {
        self.dev_maybe_busy[dev] = true;
        self.dev_timing_horizon[dev] = None;
    }

    /// The fabric's routing tables and edge list.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    // ------------------------------------------------------------------
    // packet API
    // ------------------------------------------------------------------

    /// Injects a raw request on a device link (`hmc_send_packet`).
    /// Returns [`HmcError::Stall`] when the link's crossbar queue is
    /// full — retry next cycle.
    pub fn send(&mut self, dev: usize, link: usize, req: Request) -> Result<(), HmcError> {
        if req.head.cub.value() as usize >= self.devices.len() {
            return Err(HmcError::InvalidCube(req.head.cub.value()));
        }
        if matches!(self.config.topology, LinkTopology::HostOnly)
            && req.head.cub.value() as usize != dev
        {
            return Err(HmcError::InvalidCube(req.head.cub.value()));
        }
        let cycle = self.cycle;
        if dev >= self.devices.len() {
            return Err(HmcError::InvalidDevice(dev));
        }
        if link >= self.devices[dev].config().links {
            return Err(HmcError::InvalidLink(link));
        }
        if !self.devices[dev].link_is_up(link) {
            return Err(HmcError::LinkDown(link));
        }
        // Link layer first: the crossbar input buffer must have room
        // and the transmitter must hold enough tokens.
        if !self.devices[dev].link_can_accept(link) {
            self.devices[dev].count_send_stall();
            return Err(HmcError::Stall);
        }
        let flits = req.flits() as u32;
        // Shadow-accounting inputs, captured before the packet moves
        // (only consulted when a sanitizer is attached).
        let tag = req.head.tag.value();
        let tracked = self.sanitizer.is_some() && request_expects_response(&self.devices, &req);
        let mut item = TrackedRequest {
            req,
            entry_device: dev,
            entry_link: link,
            issue_cycle: cycle,
            hops: 0,
            ready_cycle: 0,
            vault_enq_cycle: 0,
        };
        let result = match self.links[dev][link].send(flits) {
            Err(()) => {
                self.devices[dev].count_send_stall();
                Err(HmcError::Stall)
            }
            Ok(grant) => {
                // The link layer owns the SEQ sequence: stamp the
                // granted value into the packet tail. A retry replays
                // this packet with the SEQ intact — the retry path
                // never consumes a fresh sequence number.
                item.req.tail.seq = grant.seq;
                if grant.errored {
                    // Injected transmission error: the packet sits in
                    // the retry buffer and replays after the retry
                    // exchange.
                    let ready = cycle + self.links[dev][link].retry_latency();
                    self.tracer.emit(TraceRecord {
                        dev: dev as u16,
                        link: link as u8,
                        a: ready,
                        ..TraceRecord::new(cycle, TraceKind::LinkRetry)
                    });
                    self.update_retry_regs(dev, link);
                    self.retry_pending.push(ready, RetryEntry { dev, link, item, ready });
                    Ok(())
                } else if let LinkErrorMode::Random { per_million } =
                    self.devices[dev].config().fault.link_error
                {
                    if self.devices[dev].fault_rng_mut().chance(per_million) {
                        self.transmit_corrupted(dev, link, item)
                    } else {
                        self.devices[dev].send(link, item).map_err(|(_, e)| e)
                    }
                } else {
                    self.devices[dev].send(link, item).map_err(|(_, e)| e)
                }
            }
        };
        if result.is_ok() {
            self.tracer.emit(TraceRecord {
                dev: dev as u16,
                link: link as u8,
                tag,
                a: flits as u64,
                ..TraceRecord::new(cycle, TraceKind::HostSend)
            });
            // A packet entered this device: the skip engine must
            // re-scan its queues before compressing again.
            self.mark_device_busy(dev);
            if let Some(san) = self.sanitizer.as_deref_mut() {
                san.note_injected(dev, link, tag, tracked, cycle);
            }
        }
        result
    }

    /// Models a random transmission error: one wire bit of the packet
    /// flips and the receive path verifies the CRC. A detected
    /// corruption keeps the original packet in the transmitter's
    /// retry buffer for replay after the retry exchange; in the
    /// (impossible-for-single-bit-flips) case CRC-32K misses, the
    /// corrupted packet is delivered as decoded.
    fn transmit_corrupted(
        &mut self,
        dev: usize,
        link: usize,
        item: TrackedRequest,
    ) -> Result<(), HmcError> {
        let cycle = self.cycle;
        let mut flits = item.req.pack();
        let bits = (flits.len() * 128) as u64;
        let bit = self.devices[dev].fault_rng_mut().below(bits) as usize;
        flits[bit / 128].words[(bit / 64) % 2] ^= 1u64 << (bit % 64);
        match Request::unpack(&flits) {
            Err(e) => {
                self.links[dev][link].stats.crc_errors += 1;
                self.links[dev][link].stats.retries += 1;
                let ready = cycle + self.links[dev][link].retry_latency();
                if self.tracer.captures(TraceLevel::FAULT) {
                    // Interning the error text allocates; this path is
                    // already cold (an injected wire fault) and only
                    // pays when something observes the stream.
                    let name = self.tracer.intern(&format!("{e}"));
                    self.tracer.emit(TraceRecord {
                        dev: dev as u16,
                        link: link as u8,
                        a: bit as u64,
                        b: ready,
                        cmd: crate::trace::CmdRef::Name(name),
                        ..TraceRecord::new(cycle, TraceKind::LinkCrc)
                    });
                }
                self.update_retry_regs(dev, link);
                self.retry_pending.push(ready, RetryEntry { dev, link, item, ready });
                Ok(())
            }
            Ok(req) => {
                let mut item = item;
                item.req = req;
                self.devices[dev].send(link, item).map_err(|(_, e)| e)
            }
        }
    }

    /// Surfaces link retry counters through the register file:
    /// `REG_LRLL` holds the retry count of the last erroring link,
    /// `REG_GRLL` the device-wide total.
    fn update_retry_regs(&mut self, dev: usize, link: usize) {
        let local = self.links[dev][link].stats.retries;
        let global: u64 = self.links[dev].iter().map(|l| l.stats.retries).sum();
        let regs = self.devices[dev].regs_mut();
        let _ = regs.write(REG_LRLL, local);
        let _ = regs.write(REG_GRLL, global);
    }

    /// Injects a raw FLIT stream on a device link — the receive-path
    /// ingress used by hosts that serialize packets themselves. The
    /// stream is decoded and its CRC-32K verified; corrupted packets
    /// are rejected with [`HmcError::CrcMismatch`] and counted in the
    /// link statistics.
    pub fn send_flits(&mut self, dev: usize, link: usize, flits: &[Flit]) -> Result<(), HmcError> {
        if dev >= self.devices.len() {
            return Err(HmcError::InvalidDevice(dev));
        }
        if link >= self.devices[dev].config().links {
            return Err(HmcError::InvalidLink(link));
        }
        match Request::unpack(flits) {
            Ok(req) => self.send(dev, link, req),
            Err(e) => {
                if matches!(e, HmcError::CrcMismatch { .. }) {
                    self.links[dev][link].stats.crc_errors += 1;
                }
                if self.tracer.captures(TraceLevel::FAULT) {
                    let name = self.tracer.intern(&format!("{e}"));
                    self.tracer.emit(TraceRecord {
                        dev: dev as u16,
                        link: link as u8,
                        cmd: crate::trace::CmdRef::Name(name),
                        ..TraceRecord::new(self.cycle, TraceKind::IngressCrc)
                    });
                }
                Err(e)
            }
        }
    }

    /// Link-layer protocol statistics for one link.
    pub fn link_stats(&self, dev: usize, link: usize) -> Result<LinkStats, HmcError> {
        self.links
            .get(dev)
            .and_then(|d| d.get(link))
            .map(|l| l.stats)
            .ok_or(HmcError::InvalidLink(link))
    }

    /// Pops the next delivered response on a host link
    /// (`hmc_recv_packet`).
    pub fn recv(&mut self, dev: usize, link: usize) -> Option<TrackedResponse> {
        let rsp = self.host_rx.get_mut(dev)?.get_mut(link)?.pop_front()?;
        // Failover may deliver on a different physical link than the
        // request entered on; the tag belongs to the entry link's pool.
        self.release_pool_tag(dev, rsp.entry_link, rsp.rsp.head.tag);
        Some(rsp)
    }

    /// Pops the delivered response carrying `tag`, if present,
    /// leaving other responses queued.
    pub fn recv_tag(&mut self, dev: usize, link: usize, tag: Tag) -> Option<TrackedResponse> {
        let queue = self.host_rx.get_mut(dev)?.get_mut(link)?;
        let idx = queue.iter().position(|r| r.rsp.head.tag == tag)?;
        let rsp = queue.remove(idx)?;
        self.release_pool_tag(dev, rsp.entry_link, tag);
        Some(rsp)
    }

    /// Abandons an in-flight request (host-side timeout reclamation).
    ///
    /// If the response is already waiting in a receive buffer it is
    /// dropped and the tag released immediately; otherwise the tag is
    /// marked as a zombie and released only when the stale response
    /// finally arrives — so the tag can never be reallocated while a
    /// response bearing it is still in flight (no ABA hazard).
    pub fn abandon_tag(&mut self, dev: usize, link: usize, tag: Tag) -> Result<(), HmcError> {
        if dev >= self.devices.len() {
            return Err(HmcError::InvalidDevice(dev));
        }
        if link >= self.devices[dev].config().links {
            return Err(HmcError::InvalidLink(link));
        }
        // Already delivered (possibly failed over to another physical
        // link): drop it from whichever receive buffer holds it.
        for queue in self.host_rx[dev].iter_mut() {
            if let Some(idx) = queue
                .iter()
                .position(|r| r.entry_link == link && r.rsp.head.tag == tag)
            {
                queue.remove(idx);
                self.devices[dev].count_abandoned();
                self.release_pool_tag(dev, link, tag);
                return Ok(());
            }
        }
        self.zombie_tags[dev].insert((link, tag.value()));
        Ok(())
    }

    /// True when a device link is currently operational (not taken
    /// down by its fault plan's schedule).
    pub fn link_is_up(&self, dev: usize, link: usize) -> bool {
        self.devices.get(dev).is_some_and(|d| d.link_is_up(link))
    }

    /// Number of responses waiting on a host link.
    pub fn pending_responses(&self, dev: usize, link: usize) -> usize {
        self.host_rx
            .get(dev)
            .and_then(|d| d.get(link))
            .map_or(0, |q| q.len())
    }

    fn release_pool_tag(&mut self, dev: usize, link: usize, tag: Tag) {
        if let Some(set) = self.pool_tags.get_mut(dev).and_then(|d| d.get_mut(link)) {
            if set.remove(&tag.value()) {
                let _ = self.tag_pools[dev][link].release(tag);
            }
        }
    }

    /// Builds and sends a request through the entry link's tag pool:
    /// acquires a tag for response-bearing commands, rolls it back on
    /// any failure, and registers it for automatic release at `recv`.
    /// `cub` is the target cube (the entry device itself for the
    /// simple local sends; any fabric-reachable cube otherwise).
    fn send_with_pool(
        &mut self,
        dev: usize,
        link: usize,
        posted: bool,
        cub: Cub,
        build: impl FnOnce(Tag, Cub) -> Result<Request, HmcError>,
    ) -> Result<Option<Tag>, HmcError> {
        // Reject out-of-range device indices up front: the old code
        // built the CUB as `dev % 8`, silently aliasing device 9 onto
        // cube 1. Validation caps contexts at `Cub::MAX_CUBES`
        // devices, so any in-range index is addressable exactly.
        if dev >= self.devices.len() {
            return Err(HmcError::InvalidDevice(dev));
        }
        let tag = if posted {
            Tag::new(0).expect("tag 0")
        } else {
            self.tag_pools
                .get_mut(dev)
                .and_then(|d| d.get_mut(link))
                .ok_or(HmcError::InvalidLink(link))?
                .acquire()?
        };
        let result = build(tag, cub).and_then(|req| self.send(dev, link, req));
        match result {
            Ok(()) => {
                if posted {
                    Ok(None)
                } else {
                    self.pool_tags[dev][link].insert(tag.value());
                    Ok(Some(tag))
                }
            }
            Err(e) => {
                if !posted {
                    let _ = self.tag_pools[dev][link].release(tag);
                }
                Err(e)
            }
        }
    }

    /// Builds and sends a standard-command request, allocating a tag
    /// from the link's pool. Returns the tag for non-posted commands,
    /// `None` for posted commands and flow packets (which never
    /// generate a response).
    pub fn send_simple(
        &mut self,
        dev: usize,
        link: usize,
        cmd: HmcRqst,
        addr: u64,
        payload: Vec<u64>,
    ) -> Result<Option<Tag>, HmcError> {
        // Flow packets are absorbed by the link layer and answer
        // nothing, so they must not hold a tag.
        let posted = cmd.is_posted() || cmd.kind() == hmc_types::CmdKind::Flow;
        if dev >= self.devices.len() {
            return Err(HmcError::InvalidDevice(dev));
        }
        let cub = Cub::new(dev as u8).expect("validated contexts hold at most 16 devices");
        self.send_with_pool(dev, link, posted, cub, |tag, cub| {
            Request::new(cmd, tag, addr, cub, payload)
        })
    }

    /// Builds and sends a standard-command request addressed to an
    /// arbitrary cube, entering the fabric on `dev`'s host link
    /// `link`. The packet hops along the topology's routing tables to
    /// `cub`, executes there, and the response returns to the entry
    /// link. Returns the tag for non-posted commands.
    pub fn send_to_cube(
        &mut self,
        dev: usize,
        link: usize,
        cub: Cub,
        cmd: HmcRqst,
        addr: u64,
        payload: Vec<u64>,
    ) -> Result<Option<Tag>, HmcError> {
        let posted = cmd.is_posted() || cmd.kind() == hmc_types::CmdKind::Flow;
        self.send_with_pool(dev, link, posted, cub, |tag, cub| {
            Request::new(cmd, tag, addr, cub, payload)
        })
    }

    /// Builds and sends a CMC request, reading the registered request
    /// length from the device's CMC table. Returns the tag for
    /// non-posted operations.
    pub fn send_cmc(
        &mut self,
        dev: usize,
        link: usize,
        code: u8,
        addr: u64,
        payload: Vec<u64>,
    ) -> Result<Option<Tag>, HmcError> {
        let reg = self.device(dev)?.cmc().lookup(code)?.registration().clone();
        let cub = Cub::new(dev as u8).expect("validated contexts hold at most 16 devices");
        self.send_with_pool(dev, link, reg.is_posted(), cub, |tag, cub| {
            Request::new_cmc(code, reg.rqst_len, tag, addr, cub, payload)
        })
    }

    /// Clocks the simulation until the response for `tag` arrives on
    /// the given link, up to `max_cycles`. Convenience wrapper for
    /// simple hosts.
    pub fn run_until_response(
        &mut self,
        dev: usize,
        link: usize,
        tag: Tag,
        max_cycles: u64,
    ) -> Result<TrackedResponse, HmcError> {
        for _ in 0..max_cycles {
            if let Some(rsp) = self.recv_tag(dev, link, tag) {
                return Ok(rsp);
            }
            self.clock();
        }
        self.recv_tag(dev, link, tag)
            .ok_or(HmcError::InvalidTag(tag.value() as u32))
    }

    // ------------------------------------------------------------------
    // clock
    // ------------------------------------------------------------------

    /// Advances the simulation by one device cycle (`hmcsim_clock`).
    ///
    /// With [`SkipMode::On`], a cycle the event horizon proves idle
    /// takes the O(1) bulk path instead of the full pipeline — the
    /// resulting state is bit-identical either way.
    pub fn clock(&mut self) -> u64 {
        if self.skippable(1).is_some() {
            self.advance_idle(1);
            self.cycle
        } else {
            self.clock_full()
        }
    }

    /// The full per-cycle pipeline.
    fn clock_full(&mut self) -> u64 {
        let cycle = self.cycle;

        // Fault-plan link schedule (no-op for empty schedules).
        for dev in &mut self.devices {
            dev.apply_fault_schedule(cycle, &mut self.tracer);
        }

        // Link-layer retries whose retry exchange completed (a retry
        // on a downed link waits for the scheduled link-up). Entries
        // whose ready cycle is still in the future are never touched;
        // a due entry that cannot deliver re-enters the heap with its
        // original priority.
        let mut deferred = Vec::new();
        while let Some((key, entry)) = self.retry_pending.pop_ready(cycle) {
            if self.devices[entry.dev].link_is_up(entry.link)
                && self.devices[entry.dev].link_can_accept(entry.link)
            {
                let RetryEntry { dev, link, item, .. } = entry;
                self.devices[dev]
                    .send(link, item)
                    .unwrap_or_else(|_| unreachable!("accept checked"));
            } else {
                deferred.push((key, entry));
            }
        }
        for (key, entry) in deferred {
            self.retry_pending.reinsert(key, entry);
        }

        // Inter-device transits whose hop latency elapsed, committed
        // edge by edge in the topology's fixed edge order (then
        // (ready, insertion) order within an edge) — a total delivery
        // order that no execution mode or thread count can perturb.
        for e in 0..self.transit_queues.len() {
            let mut deferred = Vec::new();
            while let Some((key, t)) = self.transit_queues[e].pop_ready(cycle) {
                match t {
                    Transit::Rqst { from_dev, to_dev, link, item, ready } => {
                        if let Err((item, _)) = self.devices[to_dev].accept_forward(link, item) {
                            // Destination queue full: retry next cycle.
                            deferred
                                .push((key, Transit::Rqst { from_dev, to_dev, link, item, ready }));
                        }
                    }
                    Transit::Rsp { from_dev, to_dev, link, item, ready } => {
                        if let Err((item, _)) = self.devices[to_dev].accept_return(link, item) {
                            deferred
                                .push((key, Transit::Rsp { from_dev, to_dev, link, item, ready }));
                        }
                    }
                }
            }
            for (key, t) in deferred {
                self.transit_queues[e].reinsert(key, t);
            }
        }

        // Stage 1: vault responses -> crossbar response queues.
        for dev in &mut self.devices {
            dev.route_responses(cycle, &mut self.tracer);
        }

        // Stage 2: crossbar response queues -> host / chained return.
        for d in 0..self.devices.len() {
            for egress in self.devices[d].drain_responses(cycle) {
                match egress {
                    Egress::Deliver(mut rsp, egress_link) => {
                        let key = (rsp.entry_link, rsp.rsp.head.tag.value());
                        if self.zombie_tags[d].remove(&key) {
                            // The host abandoned this tag; the stale
                            // response dies here and the tag finally
                            // returns to its pool.
                            self.devices[d].count_abandoned();
                            self.release_pool_tag(d, rsp.entry_link, rsp.rsp.head.tag);
                            self.tracer.emit(TraceRecord {
                                dev: d as u16,
                                tag: rsp.rsp.head.tag.value(),
                                link: rsp.entry_link as u8,
                                ..TraceRecord::new(cycle, TraceKind::Zombie)
                            });
                            if let Some(san) = self.sanitizer.as_deref_mut() {
                                san.note_zombie(d, key.0, key.1, cycle);
                            }
                            continue;
                        }
                        if let Some(san) = self.sanitizer.as_deref_mut() {
                            if !san.note_delivered(d, key.0, key.1, cycle) {
                                // Phantom response dropped under the
                                // Recover policy.
                                continue;
                            }
                        }
                        rsp.complete_cycle = cycle + 1;
                        rsp.latency = (cycle + 1).saturating_sub(rsp.issue_cycle);
                        self.devices[d].record_latency(rsp.class, rsp.latency);
                        if let Some(tel) = self.telemetry.as_deref_mut() {
                            tel.record_response(d, &rsp);
                        }
                        self.tracer.emit(TraceRecord {
                            dev: d as u16,
                            tag: rsp.rsp.head.tag.value(),
                            a: rsp.latency,
                            link: rsp.entry_link as u8,
                            ..TraceRecord::new(cycle, TraceKind::Deliver)
                        });
                        self.host_rx[d][egress_link].push_back(rsp);
                    }
                    Egress::Forward(rsp) => {
                        let to_dev = self
                            .topology
                            .next_hop(d, rsp.entry_device)
                            .expect("forwarded response has a route to its entry device");
                        let hop = self.devices[d].config().hop_latency;
                        self.tracer.emit(TraceRecord {
                            dev: d as u16,
                            link: rsp.entry_link as u8,
                            tag: rsp.rsp.head.tag.value(),
                            a: to_dev as u64,
                            b: cycle + hop,
                            ..TraceRecord::new(cycle, TraceKind::HopRsp)
                        });
                        self.push_transit(Transit::Rsp {
                            from_dev: d,
                            to_dev,
                            link: rsp.entry_link,
                            item: rsp,
                            ready: cycle + hop,
                        });
                    }
                }
            }
        }

        // Stage 3: vault execution — sequential reference path or
        // the deterministic parallel engine (bit-identical results;
        // see `crate::parallel`).
        match self.exec_mode {
            ExecMode::Sequential => {
                for dev in &mut self.devices {
                    let absorbed = dev.execute_vaults(cycle, &mut self.tracer);
                    if absorbed > 0 {
                        if let Some(san) = self.sanitizer.as_deref_mut() {
                            san.note_absorbed(absorbed);
                        }
                    }
                }
            }
            ExecMode::Parallel { threads } => {
                let pool = self.pool.get_or_insert_with(|| WorkerPool::new(threads));
                let absorbed =
                    execute_vaults_parallel(&mut self.devices, pool, cycle, &mut self.tracer);
                for a in absorbed {
                    if a > 0 {
                        if let Some(san) = self.sanitizer.as_deref_mut() {
                            san.note_absorbed(a);
                        }
                    }
                }
            }
        }

        // Stage 4: crossbar request routing (+ chained forwarding).
        for d in 0..self.devices.len() {
            let outcome = self.devices[d].route_requests(cycle, &mut self.tracer);
            // Token return: FLITs freed from the input buffers.
            for (link, &flits) in outcome.freed_flits.iter().enumerate() {
                if flits > 0 {
                    self.links[d][link].return_tokens(flits as u32);
                }
            }
            for fwd in outcome.forwards {
                let target = fwd.item.req.head.cub.value() as usize;
                let to_dev = self
                    .topology
                    .next_hop(d, target)
                    .expect("forwarded request has a route to its target cube");
                let hop = self.devices[d].config().hop_latency;
                let mut item = fwd.item;
                item.hops += 1;
                self.tracer.emit(TraceRecord {
                    dev: d as u16,
                    link: fwd.from_link as u8,
                    tag: item.req.head.tag.value(),
                    a: to_dev as u64,
                    b: cycle + hop,
                    ..TraceRecord::new(cycle, TraceKind::HopRqst)
                });
                self.push_transit(Transit::Rqst {
                    from_dev: d,
                    to_dev,
                    link: fwd.from_link,
                    item,
                    ready: cycle + hop,
                });
            }
        }

        for dev in &mut self.devices {
            dev.tick_power();
        }

        // Telemetry window sampling (reads state only — runs before
        // the sanitizer so forensic dumps embed this cycle's windows).
        if self.telemetry.is_some() {
            self.run_telemetry(cycle);
        }

        // Sanitizer boundary audit, before the counter advances so a
        // forensic snapshot carries the violating cycle number (a
        // restored snapshot re-runs this boundary and re-detects).
        if self.sanitizer.is_some() {
            self.run_sanitizer(cycle);
        }

        // Per-cube skip caches: an exact end-of-cycle scan (cheap
        // relative to the pipeline that just ran). A device's bank
        // state can only have changed this cycle if it held work at
        // the cycle boundary — deliveries land in crossbar queues and
        // execute no earlier than the *next* cycle — so a device that
        // was provably empty and stayed empty keeps its cached timing
        // horizon.
        for (i, dev) in self.devices.iter().enumerate() {
            let busy = dev.pending_work() != 0;
            if self.dev_maybe_busy[i] || busy {
                self.dev_timing_horizon[i] = None;
            }
            self.dev_maybe_busy[i] = busy;
        }
        self.cycle += 1;
        self.cycle
    }

    /// Enqueues a transit on its directed fabric edge's queue.
    fn push_transit(&mut self, t: Transit) {
        let (from, to) = t.edge();
        let e = self
            .topology
            .edge_id(from, to)
            .expect("transits only travel along fabric edges");
        self.transit_queues[e].push(t.ready(), t);
    }

    /// How many of the next `max` cycles are provably idle — nothing
    /// in any device queue, no transit, retry or fault event due
    /// inside the window, and the attached sanitizer (if any)
    /// guarantees its per-cycle audit is a no-op across the whole
    /// region. `None` when skipping is off or the current cycle must
    /// execute the full pipeline.
    fn skippable(&mut self, max: u64) -> Option<u64> {
        if !self.skip_mode.is_on() || max == 0 {
            return None;
        }
        let cycle = self.cycle;
        // Only devices flagged maybe-busy are scanned; a cleared flag
        // is a proof the device's queues are empty (it stays cleared
        // until an injection or a full clock that leaves work behind
        // re-sets it), so quiet cubes cost nothing here.
        for i in 0..self.devices.len() {
            if self.dev_maybe_busy[i] {
                if self.devices[i].pending_work() != 0 {
                    return None;
                }
                self.dev_maybe_busy[i] = false;
            }
        }
        let mut k = max;
        for ready in self
            .transit_queues
            .iter()
            .filter_map(|q| q.peek_ready())
            .chain(self.retry_pending.peek_ready())
        {
            if ready <= cycle {
                return None;
            }
            k = k.min(ready - cycle);
        }
        for dev in &self.devices {
            if let Some(at) = dev.next_fault_event() {
                if at <= cycle {
                    return None;
                }
                k = k.min(at - cycle);
            }
        }
        // Timing-backend horizon: a bank (or validated-shadow bank)
        // release is an availability change the full path must observe
        // on time, so the skip window is clamped to it. Cached per
        // device because a device's bank state cannot change while
        // its queues stay empty — an idle cube's horizon is a cache
        // hit, never a bank rescan.
        for i in 0..self.devices.len() {
            let horizon = match self.dev_timing_horizon[i] {
                Some(h) if h.is_none_or(|t| t > cycle) => h,
                _ => {
                    let h = self.devices[i].next_timing_event(cycle);
                    self.dev_timing_horizon[i] = Some(h);
                    h
                }
            };
            if let Some(t) = horizon {
                k = k.min(t - cycle);
            }
        }
        if self.sanitizer.is_some() {
            let allow = self.sanitizer_skip_allowance(cycle, k);
            if allow == 0 {
                return None;
            }
            k = allow;
        }
        Some(k)
    }

    /// Applies `k` compressed idle cycles in closed form: per-device
    /// leakage, telemetry samples and sanitizer bookkeeping advance
    /// in the same order the full pipeline applies them, then the
    /// cycle counter jumps. Only legal for a region approved by
    /// [`HmcSim::skippable`].
    fn advance_idle(&mut self, k: u64) {
        let cycle = self.cycle;
        if self.tracer.captures(TraceLevel::ENGINE) {
            self.tracer.emit(TraceRecord {
                a: cycle,
                b: k,
                ..TraceRecord::new(cycle, TraceKind::IdleSkip)
            });
        }
        for dev in &mut self.devices {
            dev.tick_power_n(k);
        }
        if self.telemetry.is_some() {
            self.run_telemetry_idle(cycle, k);
        }
        if self.sanitizer.is_some() {
            self.run_sanitizer_idle(k);
        }
        self.cycle += k;
    }

    /// The earliest cycle at which the fabric could act: now if any
    /// device queue holds a packet, otherwise the earliest due
    /// transit, link-layer retry or scheduled fault event. `None`
    /// means the simulation is idle forever absent new injections.
    /// Conservative — the fabric may still do nothing at the returned
    /// cycle (e.g. a retry finds its link down) — and independent of
    /// [`SkipMode`].
    pub fn next_event_cycle(&self) -> Option<u64> {
        // Only maybe-busy devices can hold packets (a cleared flag is
        // a proof of emptiness), so idle cubes are never rescanned.
        if self
            .devices
            .iter()
            .zip(&self.dev_maybe_busy)
            .any(|(d, &busy)| busy && d.pending_work() != 0)
        {
            return Some(self.cycle);
        }
        self.transit_queues
            .iter()
            .filter_map(|q| q.peek_ready())
            .chain(self.retry_pending.peek_ready())
            .chain(self.devices.iter().filter_map(|d| d.next_fault_event()))
            .chain(self.devices.iter().enumerate().filter_map(|(i, d)| {
                // Read the per-cube horizon cache where valid; this
                // accessor is immutable, so a stale entry falls back
                // to a fresh (uncached) computation.
                match self.dev_timing_horizon[i] {
                    Some(h) if h.is_none_or(|t| t > self.cycle) => h,
                    _ => d.next_timing_event(self.cycle),
                }
            }))
            .min()
            .map(|c| c.max(self.cycle))
    }

    /// Advances up to `max_cycles`, compressing the idle prefix and
    /// stopping after the first full (potentially eventful) cycle
    /// executes. Returns the number of cycles advanced. With
    /// [`SkipMode::Off`] this executes exactly one full cycle per
    /// call, so drivers can use it unconditionally.
    pub fn clock_until_event(&mut self, max_cycles: u64) -> u64 {
        let start = self.cycle;
        let target = start + max_cycles;
        while self.cycle < target {
            match self.skippable(target - self.cycle) {
                Some(k) => self.advance_idle(k),
                None => {
                    self.clock_full();
                    break;
                }
            }
        }
        self.cycle - start
    }

    /// Clocks the simulation `n` times (idle runs compress under
    /// [`SkipMode::On`]; the observable state is identical either
    /// way).
    pub fn clock_n(&mut self, n: u64) -> u64 {
        let target = self.cycle + n;
        while self.cycle < target {
            match self.skippable(target - self.cycle) {
                Some(k) => self.advance_idle(k),
                None => {
                    self.clock_full();
                }
            }
        }
        self.cycle
    }

    /// True when no packet is resident in any device queue,
    /// inter-device transit or link-layer retry buffer (delivered
    /// host responses may still be waiting in the receive buffers).
    pub fn is_quiescent(&self) -> bool {
        self.transit_queues.iter().all(|q| q.is_empty())
            && self.retry_pending.is_empty()
            && self.devices.iter().all(|d| d.pending_work() == 0)
    }

    /// Clocks until the fabric is quiescent (posted traffic fully
    /// retired), up to `max_cycles` extra cycles.
    pub fn drain(&mut self, max_cycles: u64) -> u64 {
        let mut spent = 0;
        while !self.is_quiescent() && spent < max_cycles {
            self.clock();
            spent += 1;
        }
        spent
    }

    /// Packets currently resident anywhere in the fabric: device
    /// queues, inter-device transit and link-layer retry buffers
    /// (delivered host responses excluded).
    pub(crate) fn live_packets(&self) -> u64 {
        self.devices.iter().map(|d| d.pending_work() as u64).sum::<u64>()
            + self.transit_queues.iter().map(|q| q.len() as u64).sum::<u64>()
            + self.retry_pending.len() as u64
    }

    /// Replaces a link's tag pool with one of the given capacity.
    /// Only legal while the pool has no tags in flight (shrinking a
    /// pool under live tags would corrupt response matching).
    pub fn configure_tag_pool(
        &mut self,
        dev: usize,
        link: usize,
        capacity: u32,
    ) -> Result<(), HmcError> {
        let pool = self
            .tag_pools
            .get_mut(dev)
            .ok_or(HmcError::InvalidDevice(dev))?
            .get_mut(link)
            .ok_or(HmcError::InvalidLink(link))?;
        if pool.in_flight() != 0 {
            return Err(HmcError::MalformedPacket(format!(
                "tag pool dev {dev} link {link} has {} tags in flight",
                pool.in_flight()
            )));
        }
        *pool = TagPool::with_capacity(capacity);
        Ok(())
    }

    /// Test backdoor: returns tokens to a link's pool outside the
    /// normal drain path — a deliberate protocol violation used to
    /// exercise the sanitizer's token checks.
    #[doc(hidden)]
    pub fn debug_force_return_tokens(&mut self, dev: usize, link: usize, flits: u32) {
        self.links[dev][link].return_tokens(flits);
    }

    /// Test backdoor: plants a response in a device's crossbar
    /// response queue that no request ever generated — a phantom, for
    /// exercising the sanitizer's causality check.
    #[doc(hidden)]
    pub fn debug_inject_phantom_response(&mut self, dev: usize, link: usize, rsp: Response) {
        let item = TrackedResponse {
            rsp,
            issue_cycle: self.cycle,
            complete_cycle: 0,
            latency: 0,
            entry_device: dev,
            entry_link: link,
            class: crate::stats::CmdClass::Other,
            stages: Default::default(),
        };
        self.devices[dev].debug_inject_response(link, item);
        // The planted response sits in a device queue: the skip
        // engine must re-scan that device before compressing.
        self.mark_device_busy(dev);
    }

    // ------------------------------------------------------------------
    // CMC API
    // ------------------------------------------------------------------

    /// Registers a CMC operation object on a device (`hmc_load_cmc`
    /// with an in-process operation). Returns the command code.
    pub fn load_cmc(&mut self, dev: usize, op: Box<dyn CmcOp>) -> Result<u8, HmcError> {
        self.device_mut(dev)?.cmc_mut().register(op)
    }

    /// Loads every operation from a CMC shared library by path
    /// (`hmc_load_cmc`): the library is resolved through the simulated
    /// dynamic loader, its entry points bound, and each operation
    /// registered. Returns the registered command codes.
    pub fn load_cmc_library(&mut self, dev: usize, path: &str) -> Result<Vec<u8>, HmcError> {
        let ops = hmc_cmc::open_library(path)?;
        let device = self.device_mut(dev)?;
        let mut codes = Vec::with_capacity(ops.len());
        for op in ops {
            match device.cmc_mut().register(op) {
                Ok(code) => codes.push(code),
                Err(e) => {
                    // Atomic load: roll back the operations this call
                    // registered so a failed library leaves no
                    // partial state.
                    for &code in &codes {
                        let _ = device.cmc_mut().unregister(code);
                    }
                    return Err(e);
                }
            }
        }
        Ok(codes)
    }

    /// Unregisters the CMC operation on `code`.
    pub fn unload_cmc(&mut self, dev: usize, code: u8) -> Result<(), HmcError> {
        self.device_mut(dev)?.cmc_mut().unregister(code)
    }

    /// Active CMC registrations on a device.
    pub fn cmc_registrations(&self, dev: usize) -> Result<Vec<CmcRegistration>, HmcError> {
        Ok(self.device(dev)?.cmc().active().cloned().collect())
    }

    // ------------------------------------------------------------------
    // JTAG + memory backdoor
    // ------------------------------------------------------------------

    /// Reads a device register over the simulated JTAG interface.
    pub fn jtag_reg_read(&self, dev: usize, reg: u32) -> Result<u64, HmcError> {
        self.device(dev)?.regs().read(reg)
    }

    /// Writes a device register over the simulated JTAG interface.
    pub fn jtag_reg_write(&mut self, dev: usize, reg: u32, value: u64) -> Result<(), HmcError> {
        self.device_mut(dev)?.regs_mut().write(reg, value)
    }

    /// Host backdoor: reads device memory directly (simulation setup
    /// and verification).
    pub fn mem_read(&self, dev: usize, addr: u64, buf: &mut [u8]) -> Result<(), HmcError> {
        self.device(dev)?.mem().read(addr, buf)
    }

    /// Host backdoor: writes device memory directly.
    pub fn mem_write(&mut self, dev: usize, addr: u64, buf: &[u8]) -> Result<(), HmcError> {
        self.device_mut(dev)?.mem_mut().write(addr, buf)
    }

    /// Host backdoor: reads one 64-bit word.
    pub fn mem_read_u64(&self, dev: usize, addr: u64) -> Result<u64, HmcError> {
        self.device(dev)?.mem().read_u64(addr)
    }

    /// Host backdoor: writes one 64-bit word.
    pub fn mem_write_u64(&mut self, dev: usize, addr: u64, value: u64) -> Result<(), HmcError> {
        self.device_mut(dev)?.mem_mut().write_u64(addr, value)
    }

    // ------------------------------------------------------------------
    // statistics
    // ------------------------------------------------------------------

    /// A device's statistics.
    pub fn stats(&self, dev: usize) -> Result<&DeviceStats, HmcError> {
        Ok(self.device(dev)?.stats())
    }

    /// A device's power report.
    pub fn power_report(&self, dev: usize) -> Result<PowerReport, HmcError> {
        Ok(self.device(dev)?.power().report())
    }

    /// Highest vault request-queue occupancy observed on a device.
    pub fn vault_queue_high_water(&self, dev: usize) -> Result<usize, HmcError> {
        Ok(self.device(dev)?.vault_queue_high_water())
    }

    /// Aggregate DRAM row-buffer statistics for a device:
    /// `(row_hits, row_misses)`.
    pub fn row_buffer_stats(&self, dev: usize) -> Result<(u64, u64), HmcError> {
        Ok(self.device(dev)?.row_buffer_stats())
    }
}

/// Whether a request will eventually generate a response the host
/// must receive (sanitizer shadow accounting): posted commands and
/// flow packets never answer; CMC postedness comes from the target
/// device's registry, with unknown codes treated as non-posted (the
/// device answers them with an error response).
fn request_expects_response(devices: &[Device], req: &Request) -> bool {
    match req.head.cmd {
        HmcRqst::Cmc(code) => devices
            .get(req.head.cub.value() as usize)
            .map(|d| {
                d.cmc()
                    .lookup(code)
                    .map(|op| !op.registration().is_posted())
                    .unwrap_or(true)
            })
            .unwrap_or(true),
        cmd => !cmd.is_posted() && cmd.kind() != hmc_types::CmdKind::Flow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::HmcResponse;

    #[test]
    fn uncontended_round_trip_is_three_cycles() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        sim.mem_write_u64(0, 0x40, 0x1234).unwrap();
        let tag = sim
            .send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![])
            .unwrap()
            .unwrap();
        let rsp = sim.run_until_response(0, 0, tag, 100).unwrap();
        assert_eq!(rsp.latency, 3, "uncontended RT is 3 cycles");
        assert_eq!(rsp.rsp.payload[0], 0x1234);
        assert_eq!(rsp.rsp.head.cmd, HmcResponse::RdRs);
    }

    #[test]
    fn write_then_read_through_pipeline() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let tag = sim
            .send_simple(0, 1, HmcRqst::Wr16, 0x100, vec![0xAA, 0xBB])
            .unwrap()
            .unwrap();
        let rsp = sim.run_until_response(0, 1, tag, 100).unwrap();
        assert_eq!(rsp.rsp.head.cmd, HmcResponse::WrRs);
        let tag = sim
            .send_simple(0, 1, HmcRqst::Rd16, 0x100, vec![])
            .unwrap()
            .unwrap();
        let rsp = sim.run_until_response(0, 1, tag, 100).unwrap();
        assert_eq!(rsp.rsp.payload, vec![0xAA, 0xBB]);
    }

    #[test]
    fn posted_sends_return_no_tag_and_complete_silently() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let tag = sim
            .send_simple(0, 0, HmcRqst::PWr16, 0x200, vec![1, 2])
            .unwrap();
        assert!(tag.is_none());
        sim.clock_n(10);
        assert_eq!(sim.pending_responses(0, 0), 0);
        assert_eq!(sim.mem_read_u64(0, 0x200).unwrap(), 1);
    }

    #[test]
    fn atomic_inc_through_pipeline() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        sim.mem_write_u64(0, 0x40, 41).unwrap();
        let tag = sim
            .send_simple(0, 0, HmcRqst::Inc8, 0x40, vec![])
            .unwrap()
            .unwrap();
        let rsp = sim.run_until_response(0, 0, tag, 100).unwrap();
        assert_eq!(rsp.rsp.head.cmd, HmcResponse::WrRs);
        assert_eq!(sim.mem_read_u64(0, 0x40).unwrap(), 42);
        assert_eq!(sim.stats(0).unwrap().atomics, 1);
    }

    #[test]
    fn cub_validation_in_host_only_topology() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let req = Request::new(
            HmcRqst::Rd16,
            Tag::new(0).unwrap(),
            0,
            Cub::new(1).unwrap(),
            vec![],
        )
        .unwrap();
        assert!(matches!(sim.send(0, 0, req), Err(HmcError::InvalidCube(1))));
    }

    #[test]
    fn chained_device_round_trip() {
        let mut sim =
            HmcSim::with_config(SimConfig::chain(DeviceConfig::gen2_4link_4gb(), 3)).unwrap();
        sim.mem_write_u64(2, 0x40, 0x77).unwrap();
        // Host attaches at device 0, target is cube 2 (two hops away).
        let req = Request::new(
            HmcRqst::Rd16,
            Tag::new(11).unwrap(),
            0x40,
            Cub::new(2).unwrap(),
            vec![],
        )
        .unwrap();
        sim.send(0, 0, req).unwrap();
        let mut got = None;
        for _ in 0..200 {
            sim.clock();
            if let Some(rsp) = sim.recv(0, 0) {
                got = Some(rsp);
                break;
            }
        }
        let rsp = got.expect("chained response arrives");
        assert_eq!(rsp.rsp.payload[0], 0x77);
        assert!(rsp.latency > 3, "chained access is slower than local");
        assert_eq!(sim.stats(0).unwrap().forwarded, 1);
    }

    #[test]
    fn send_simple_does_not_alias_cube_ids_past_eight() {
        // Regression: send_with_pool used to build the CUB as
        // `dev % 8`, silently aliasing device 9 onto cube 1.
        let mut sim =
            HmcSim::with_config(SimConfig::chain(DeviceConfig::gen2_4link_4gb(), 10)).unwrap();
        sim.mem_write_u64(9, 0x40, 0x99).unwrap();
        sim.mem_write_u64(1, 0x40, 0x11).unwrap();
        let tag = sim
            .send_simple(9, 0, HmcRqst::Rd16, 0x40, vec![])
            .unwrap()
            .unwrap();
        let rsp = sim.run_until_response(9, 0, tag, 100).unwrap();
        assert_eq!(rsp.rsp.payload[0], 0x99, "request executed on device 9, not cube 1");
        assert_eq!(rsp.rsp.head.cub.value(), 9);
        // Out-of-range device indices are rejected, not wrapped.
        assert!(matches!(
            sim.send_simple(10, 0, HmcRqst::Rd16, 0x40, vec![]),
            Err(HmcError::InvalidDevice(10))
        ));
    }

    #[test]
    fn ring_routes_the_short_way_and_round_trips() {
        let mut sim =
            HmcSim::with_config(SimConfig::ring(DeviceConfig::gen2_4link_4gb(), 6)).unwrap();
        sim.mem_write_u64(5, 0x40, 0xAB).unwrap();
        // Cube 5 is one hop backwards from cube 0 on the ring; the
        // chain walk would have taken five hops forward.
        let tag = sim
            .send_to_cube(0, 0, Cub::new(5).unwrap(), HmcRqst::Rd16, 0x40, vec![])
            .unwrap()
            .unwrap();
        let rsp = sim.run_until_response(0, 0, tag, 50).unwrap();
        assert_eq!(rsp.rsp.payload[0], 0xAB);
        // One hop out, one hop back: far cheaper than the five-hops-
        // each-way walk the chain routing would have taken (≥ 20
        // cycles of hop+crossbar latency alone).
        assert!(rsp.latency > 3, "remote access is slower than local");
        assert!(rsp.latency <= 12, "ring takes the short way round, got {}", rsp.latency);
    }

    #[test]
    fn mesh_round_trip_across_sixteen_cubes() {
        let mut sim =
            HmcSim::with_config(SimConfig::mesh(DeviceConfig::gen2_4link_4gb(), 4, 4)).unwrap();
        sim.mem_write_u64(15, 0x80, 0xF0F0).unwrap();
        let tag = sim
            .send_to_cube(0, 1, Cub::new(15).unwrap(), HmcRqst::Rd16, 0x80, vec![])
            .unwrap()
            .unwrap();
        let rsp = sim.run_until_response(0, 1, tag, 200).unwrap();
        assert_eq!(rsp.rsp.payload[0], 0xF0F0);
        assert_eq!(rsp.rsp.head.cub.value(), 15, "executed on the far corner");
        assert!(rsp.latency > 3, "six hops each way cost real cycles");
        assert!(sim.stats(0).unwrap().forwarded >= 1);
    }

    #[test]
    fn jtag_and_mode_paths_agree() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_8link_8gb()).unwrap();
        assert_eq!(sim.jtag_reg_read(0, crate::regs::REG_FEAT).unwrap(), 0x88);
        sim.jtag_reg_write(0, crate::regs::REG_EDR0, 0xCAFE).unwrap();
        let tag = sim
            .send_simple(0, 0, HmcRqst::MdRd, crate::regs::REG_EDR0 as u64, vec![])
            .unwrap()
            .unwrap();
        let rsp = sim.run_until_response(0, 0, tag, 100).unwrap();
        assert_eq!(rsp.rsp.payload[0], 0xCAFE);
    }

    #[test]
    fn tag_pool_recycles_through_recv() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        for _ in 0..3000 {
            // More iterations than the 2048-tag space: only recycling
            // makes this pass.
            let tag = sim
                .send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![])
                .unwrap()
                .unwrap();
            let _ = sim.run_until_response(0, 0, tag, 100).unwrap();
        }
    }

    #[test]
    fn skip_mode_is_bit_identical_to_full_execution() {
        let run = |skip: SkipMode| {
            let mut cfg = SimConfig::single(DeviceConfig::gen2_4link_4gb());
            cfg.skip_mode = skip;
            let mut sim = HmcSim::with_config(cfg).unwrap();
            sim.mem_write_u64(0, 0x40, 7).unwrap();
            // Bursts of traffic separated by long idle gaps — the
            // shape the event-horizon engine compresses.
            for burst in 0..3u64 {
                let tag = sim
                    .send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![])
                    .unwrap()
                    .unwrap();
                let rsp = sim.run_until_response(0, 0, tag, 100).unwrap();
                assert_eq!(rsp.rsp.payload[0], 7, "burst {burst}");
                sim.clock_n(5_000);
            }
            (sim.cycle(), sim.state_fingerprint(), sim.stats(0).unwrap().clone())
        };
        let off = run(SkipMode::Off);
        let on = run(SkipMode::On);
        assert_eq!(off.0, on.0, "cycle counts agree");
        assert_eq!(off.1, on.1, "fingerprints agree");
        assert_eq!(off.2, on.2, "device stats agree");
    }

    #[test]
    fn clock_until_event_compresses_idle_and_steps_busy() {
        let mut cfg = SimConfig::single(DeviceConfig::gen2_4link_4gb());
        cfg.skip_mode = SkipMode::On;
        let mut sim = HmcSim::with_config(cfg).unwrap();
        // Fully idle: the entire budget compresses in one call.
        assert_eq!(sim.clock_until_event(10_000), 10_000);
        assert_eq!(sim.cycle(), 10_000);
        assert_eq!(sim.next_event_cycle(), None, "idle forever absent injections");
        // With traffic in flight the clock executes full cycles.
        let tag = sim
            .send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![])
            .unwrap()
            .unwrap();
        assert_eq!(sim.next_event_cycle(), Some(sim.cycle()));
        let mut advanced = 0;
        while sim.recv_tag(0, 0, tag).is_none() {
            advanced += sim.clock_until_event(100);
            assert!(advanced <= 10, "response retires in a few full cycles");
        }
        assert_eq!(sim.cycle(), 10_000 + advanced);
    }

    #[test]
    fn clock_until_event_without_skip_steps_one_cycle() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        assert_eq!(sim.skip_mode(), SkipMode::Off);
        assert_eq!(sim.clock_until_event(10_000), 1, "Off mode: one full cycle per call");
        assert_eq!(sim.cycle(), 1);
    }

    #[test]
    fn set_skip_mode_mid_run_is_safe() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        sim.clock_n(100);
        sim.set_skip_mode(SkipMode::On);
        sim.clock_n(1_000);
        sim.set_skip_mode(SkipMode::Off);
        sim.clock_n(17);
        assert_eq!(sim.cycle(), 1_117);
        // A reference run that never skipped lands on the same state.
        let mut reference = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        reference.clock_n(1_117);
        assert_eq!(sim.state_fingerprint(), reference.state_fingerprint());
    }

    #[test]
    fn latency_stats_accumulate() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        for _ in 0..4 {
            let tag = sim
                .send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![])
                .unwrap()
                .unwrap();
            sim.run_until_response(0, 0, tag, 100).unwrap();
        }
        let stats = sim.stats(0).unwrap();
        assert_eq!(stats.latency.count(), 4);
        assert_eq!(stats.latency.min(), 3);
        assert_eq!(stats.class_latency.read.count(), 4, "Rd16 round trips are class read");
    }
}
