//! HMC-Sim C API compatibility layer.
//!
//! The paper's first requirement is API compatibility with HMC-Sim
//! 1.0 (§IV-A): existing infrastructures drive the simulator through
//! a small set of C functions that traffic in raw `uint64_t` packet
//! buffers. This module mirrors that surface over [`HmcSim`] so
//! ports of existing HMC-Sim 1.0/2.0 harnesses map line by line:
//!
//! | C API | here |
//! |---|---|
//! | `hmcsim_init(...)` | [`hmcsim_init`] |
//! | `hmcsim_build_memrequest(...)` | [`hmcsim_build_memrequest`] |
//! | `hmcsim_send(hmc, packet)` | [`hmcsim_send`] |
//! | `hmcsim_recv(hmc, dev, link, packet)` | [`hmcsim_recv`] |
//! | `hmcsim_decode_memresponse(...)` | [`hmcsim_decode_memresponse`] |
//! | `hmcsim_clock(hmc)` | [`hmcsim_clock`] |
//! | `hmcsim_load_cmc(hmc, path)` | [`hmcsim_load_cmc`] |
//! | `hmcsim_jtag_reg_read/write` | [`hmcsim_jtag_reg_read`] / [`hmcsim_jtag_reg_write`] |
//!
//! Like the C API, packets are flat little-endian `u64` buffers laid
//! out `[head, data..., tail]`, and completion codes are integers:
//! `0` success, [`HMC_STALL`] for back-pressure, [`HMC_ERROR`] for
//! hard failures.

use crate::config::DeviceConfig;
use crate::sim::HmcSim;
use hmc_types::packet::payload_words;
use hmc_types::{Cub, HmcError, HmcRqst, PayloadBuf, ReqHead, ReqTail, Request, Slid, Tag};

/// Success return code.
pub const HMC_OK: i32 = 0;
/// Transient stall: retry next cycle (C `HMC_STALL`).
pub const HMC_STALL: i32 = 2;
/// Hard error (C `-1`).
pub const HMC_ERROR: i32 = -1;

/// `hmcsim_init` — builds a simulation context from the discrete
/// geometry arguments of the C API. `capacity` is in GB.
#[allow(clippy::too_many_arguments)]
pub fn hmcsim_init(
    num_devs: usize,
    num_links: usize,
    num_vaults: usize,
    queue_depth: usize,
    num_banks: usize,
    capacity_gb: u64,
    xbar_depth: usize,
) -> Result<HmcSim, HmcError> {
    let quads = 4;
    if !num_vaults.is_multiple_of(quads) {
        return Err(HmcError::MalformedPacket(format!(
            "vault count {num_vaults} not divisible into {quads} quads"
        )));
    }
    let device = DeviceConfig {
        links: num_links,
        capacity: capacity_gb << 30,
        quads,
        vaults_per_quad: num_vaults / quads,
        banks_per_vault: num_banks,
        vault_queue_depth: queue_depth,
        xbar_queue_depth: xbar_depth,
        ..DeviceConfig::gen2_4link_4gb()
    };
    if num_devs == 1 {
        HmcSim::new(device)
    } else {
        HmcSim::with_config(crate::config::SimConfig::chain(device, num_devs))
    }
}

/// `hmcsim_build_memrequest` — encodes a request into the caller's
/// flat packet buffer (`[head, payload..., tail]`), returning the
/// number of `u64` words written. The tail is finalized (CRC and
/// SLID) by [`hmcsim_send`], matching the C flow where the library
/// owns those fields.
pub fn hmcsim_build_memrequest(
    dev: u8,
    addr: u64,
    tag: u16,
    rqst: HmcRqst,
    link: u8,
    payload: &[u64],
    packet: &mut [u64],
) -> Result<usize, HmcError> {
    let info = rqst
        .fixed_info()
        .ok_or_else(|| HmcError::MalformedPacket("use send_cmc paths for CMC requests".into()))?;
    let words = payload_words(info.rqst_flits);
    if payload.len() != words {
        return Err(HmcError::MalformedPacket(format!(
            "{rqst} expects {words} payload words, got {}",
            payload.len()
        )));
    }
    let total = words + 2;
    if packet.len() < total {
        return Err(HmcError::MalformedPacket(format!(
            "packet buffer of {} words too small for {total}",
            packet.len()
        )));
    }
    let head = ReqHead::new(rqst, Tag::new(tag as u32)?, addr, Cub::new(dev)?);
    packet[0] = head.encode();
    packet[1..1 + words].copy_from_slice(payload);
    packet[1 + words] = ReqTail { slid: Slid::new(link % 8)?, ..ReqTail::default() }.encode();
    Ok(total)
}

/// `hmcsim_send` — decodes the caller's packet buffer and injects it
/// on the given device link. Returns [`HMC_OK`], [`HMC_STALL`] or
/// [`HMC_ERROR`].
pub fn hmcsim_send(hmc: &mut HmcSim, dev: usize, link: usize, packet: &[u64]) -> i32 {
    if packet.len() < 2 {
        return HMC_ERROR;
    }
    let Ok(head) = ReqHead::decode(packet[0]) else {
        return HMC_ERROR;
    };
    let words = payload_words(head.lng);
    if packet.len() < words + 2 {
        return HMC_ERROR;
    }
    let Ok(tail) = ReqTail::decode(packet[words + 1]) else {
        return HMC_ERROR;
    };
    let req = Request { head, payload: PayloadBuf::from_slice(&packet[1..1 + words]), tail };
    match hmc.send(dev, link, req) {
        Ok(()) => HMC_OK,
        Err(HmcError::Stall) => HMC_STALL,
        Err(_) => HMC_ERROR,
    }
}

/// `hmcsim_recv` — pops the next response on a host link into the
/// caller's flat buffer (`[head, payload..., tail]`). Returns the
/// word count via `out_len`. [`HMC_STALL`] means nothing is waiting.
pub fn hmcsim_recv(
    hmc: &mut HmcSim,
    dev: usize,
    link: usize,
    packet: &mut [u64],
    out_len: &mut usize,
) -> i32 {
    let Some(rsp) = hmc.recv(dev, link) else {
        return HMC_STALL;
    };
    let words = rsp.rsp.payload.len();
    let total = words + 2;
    if packet.len() < total {
        return HMC_ERROR;
    }
    packet[0] = rsp.rsp.head.encode();
    packet[1..1 + words].copy_from_slice(&rsp.rsp.payload);
    packet[1 + words] = rsp.rsp.tail.encode();
    *out_len = total;
    HMC_OK
}

/// Decoded response fields, as `hmcsim_decode_memresponse` returns
/// them through out-parameters in C.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedResponse {
    /// Response command.
    pub rsp_cmd: hmc_types::HmcResponse,
    /// Echoed tag.
    pub tag: u16,
    /// Packet length in FLITs.
    pub lng: u8,
    /// Source link id.
    pub slid: u8,
    /// Originating cube.
    pub cub: u8,
    /// Atomic flag.
    pub af: bool,
    /// Error status from the tail.
    pub errstat: u8,
    /// Data-invalid (poison) bit from the tail.
    pub dinv: bool,
    /// Data payload words.
    pub payload: Vec<u64>,
}

impl DecodedResponse {
    /// True when the response reports a failed request: an ERROR
    /// packet, a nonzero `ERRSTAT`, or poisoned (DINV) data.
    pub fn failed(&self) -> bool {
        matches!(self.rsp_cmd, hmc_types::HmcResponse::Error) || self.errstat != 0 || self.dinv
    }
}

/// `hmcsim_decode_memresponse` — decodes a flat response buffer.
pub fn hmcsim_decode_memresponse(packet: &[u64]) -> Result<DecodedResponse, HmcError> {
    if packet.len() < 2 {
        return Err(HmcError::InvalidPacketLength(packet.len()));
    }
    let head = hmc_types::RspHead::decode(packet[0])?;
    let words = payload_words(head.lng);
    if packet.len() < words + 2 {
        return Err(HmcError::InvalidPacketLength(packet.len()));
    }
    let tail = hmc_types::RspTail::decode(packet[words + 1]);
    Ok(DecodedResponse {
        rsp_cmd: head.cmd,
        tag: head.tag.value(),
        lng: head.lng,
        slid: head.slid.value(),
        cub: head.cub.value(),
        af: head.af,
        errstat: tail.errstat,
        dinv: tail.dinv,
        payload: packet[1..1 + words].to_vec(),
    })
}

/// `hmcsim_util_get_errstat` — extracts the 7-bit `ERRSTAT` field and
/// the DINV poison bit from a flat response buffer so C-style callers
/// can detect failed requests without a full decode. Returns
/// [`HMC_OK`] or [`HMC_ERROR`] (malformed buffer).
pub fn hmcsim_util_get_errstat(packet: &[u64], errstat: &mut u8, dinv: &mut bool) -> i32 {
    if packet.len() < 2 {
        return HMC_ERROR;
    }
    let Ok(head) = hmc_types::RspHead::decode(packet[0]) else {
        return HMC_ERROR;
    };
    let words = payload_words(head.lng);
    if packet.len() < words + 2 {
        return HMC_ERROR;
    }
    let tail = hmc_types::RspTail::decode(packet[words + 1]);
    *errstat = tail.errstat;
    *dinv = tail.dinv;
    HMC_OK
}

/// `hmcsim_clock` — advances the context one cycle.
pub fn hmcsim_clock(hmc: &mut HmcSim) -> u64 {
    hmc.clock()
}

/// `hmcsim_load_cmc` — loads a CMC shared library by path onto device
/// 0, the C signature's behaviour. Returns [`HMC_OK`] or
/// [`HMC_ERROR`].
pub fn hmcsim_load_cmc(hmc: &mut HmcSim, path: &str) -> i32 {
    match hmc.load_cmc_library(0, path) {
        Ok(_) => HMC_OK,
        Err(_) => HMC_ERROR,
    }
}

/// `hmcsim_util_decode_qv` — decomposes a physical address into
/// `(quad, vault)` under a device's address map, as the C utility
/// functions do for request steering.
pub fn hmcsim_util_decode_qv(
    hmc: &HmcSim,
    dev: usize,
    addr: u64,
    quad: &mut u32,
    vault: &mut u32,
) -> i32 {
    let Ok(config) = hmc.device_config(dev) else {
        return HMC_ERROR;
    };
    let map = crate::addr::AddressMap::new(config);
    match map.decompose(addr) {
        Ok(loc) => {
            *quad = loc.quad;
            *vault = loc.vault;
            HMC_OK
        }
        Err(_) => HMC_ERROR,
    }
}

/// `hmcsim_util_decode_bank` — the bank within the vault.
pub fn hmcsim_util_decode_bank(hmc: &HmcSim, dev: usize, addr: u64, bank: &mut u32) -> i32 {
    let Ok(config) = hmc.device_config(dev) else {
        return HMC_ERROR;
    };
    match crate::addr::AddressMap::new(config).decompose(addr) {
        Ok(loc) => {
            *bank = loc.bank;
            HMC_OK
        }
        Err(_) => HMC_ERROR,
    }
}

/// `hmcsim_util_set_max_blocksize` analogue: the block size is fixed
/// at construction here, so this validates the request instead.
pub fn hmcsim_util_is_legal_blocksize(size: usize) -> bool {
    matches!(size, 32 | 64 | 128 | 256)
}

/// `hmcsim_jtag_reg_read`.
pub fn hmcsim_jtag_reg_read(hmc: &HmcSim, dev: usize, reg: u32, result: &mut u64) -> i32 {
    match hmc.jtag_reg_read(dev, reg) {
        Ok(v) => {
            *result = v;
            HMC_OK
        }
        Err(_) => HMC_ERROR,
    }
}

/// `hmcsim_jtag_reg_write`.
pub fn hmcsim_jtag_reg_write(hmc: &mut HmcSim, dev: usize, reg: u32, value: u64) -> i32 {
    match hmc.jtag_reg_write(dev, reg, value) {
        Ok(()) => HMC_OK,
        Err(_) => HMC_ERROR,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::HmcResponse;

    #[test]
    fn c_style_write_read_flow() {
        let mut hmc = hmcsim_init(1, 4, 32, 64, 16, 4, 128).unwrap();
        let mut packet = [0u64; 34];

        // Build and send a WR16 exactly as a C harness would.
        let len =
            hmcsim_build_memrequest(0, 0x1000, 7, HmcRqst::Wr16, 0, &[0xAA, 0xBB], &mut packet)
                .unwrap();
        assert_eq!(len, 4);
        assert_eq!(hmcsim_send(&mut hmc, 0, 0, &packet[..len]), HMC_OK);

        // Nothing back yet.
        let mut out = [0u64; 34];
        let mut out_len = 0usize;
        assert_eq!(hmcsim_recv(&mut hmc, 0, 0, &mut out, &mut out_len), HMC_STALL);

        // Clock until the ack arrives.
        for _ in 0..10 {
            hmcsim_clock(&mut hmc);
        }
        assert_eq!(hmcsim_recv(&mut hmc, 0, 0, &mut out, &mut out_len), HMC_OK);
        let decoded = hmcsim_decode_memresponse(&out[..out_len]).unwrap();
        assert_eq!(decoded.rsp_cmd, HmcResponse::WrRs);
        assert_eq!(decoded.tag, 7);

        // Read it back.
        let len = hmcsim_build_memrequest(0, 0x1000, 8, HmcRqst::Rd16, 1, &[], &mut packet)
            .unwrap();
        assert_eq!(hmcsim_send(&mut hmc, 0, 1, &packet[..len]), HMC_OK);
        for _ in 0..10 {
            hmcsim_clock(&mut hmc);
        }
        assert_eq!(hmcsim_recv(&mut hmc, 0, 1, &mut out, &mut out_len), HMC_OK);
        let decoded = hmcsim_decode_memresponse(&out[..out_len]).unwrap();
        assert_eq!(decoded.payload, vec![0xAA, 0xBB]);
    }

    #[test]
    fn build_validates_payload_and_buffer() {
        let mut packet = [0u64; 4];
        assert!(hmcsim_build_memrequest(0, 0, 0, HmcRqst::Wr16, 0, &[1], &mut packet).is_err());
        let mut tiny = [0u64; 2];
        assert!(hmcsim_build_memrequest(0, 0, 0, HmcRqst::Wr16, 0, &[1, 2], &mut tiny).is_err());
        assert!(
            hmcsim_build_memrequest(0, 0, 0, HmcRqst::Cmc(125), 0, &[], &mut packet).is_err(),
            "CMC requests go through the registry-aware path"
        );
    }

    #[test]
    fn send_rejects_garbage() {
        let mut hmc = hmcsim_init(1, 4, 32, 64, 16, 4, 128).unwrap();
        assert_eq!(hmcsim_send(&mut hmc, 0, 0, &[]), HMC_ERROR);
        // LNG=0 header.
        assert_eq!(hmcsim_send(&mut hmc, 0, 0, &[0, 0]), HMC_ERROR);
    }

    #[test]
    fn jtag_compat_paths() {
        let mut hmc = hmcsim_init(1, 8, 32, 64, 32, 8, 128).unwrap();
        let mut value = 0u64;
        assert_eq!(
            hmcsim_jtag_reg_read(&hmc, 0, crate::regs::REG_FEAT, &mut value),
            HMC_OK
        );
        assert_eq!(value, 0x88);
        assert_eq!(hmcsim_jtag_reg_write(&mut hmc, 0, crate::regs::REG_EDR0, 9), HMC_OK);
        assert_eq!(hmcsim_jtag_reg_write(&mut hmc, 0, 0x999, 9), HMC_ERROR);
    }

    #[test]
    fn load_cmc_compat() {
        hmc_cmc::ops::register_builtin_libraries();
        let mut hmc = hmcsim_init(1, 4, 32, 64, 16, 4, 128).unwrap();
        assert_eq!(hmcsim_load_cmc(&mut hmc, "libhmc_mutex.so"), HMC_OK);
        assert_eq!(hmcsim_load_cmc(&mut hmc, "libmissing.so"), HMC_ERROR);
    }

    #[test]
    fn util_decoders() {
        let hmc = hmcsim_init(1, 4, 32, 64, 16, 4, 128).unwrap();
        let (mut quad, mut vault, mut bank) = (0u32, 0u32, 0u32);
        assert_eq!(hmcsim_util_decode_qv(&hmc, 0, 9 * 64, &mut quad, &mut vault), HMC_OK);
        assert_eq!(vault, 9);
        assert_eq!(quad, 1);
        assert_eq!(hmcsim_util_decode_bank(&hmc, 0, 9 * 64, &mut bank), HMC_OK);
        assert_eq!(bank, 0);
        assert_eq!(
            hmcsim_util_decode_qv(&hmc, 0, u64::MAX, &mut quad, &mut vault),
            HMC_ERROR
        );
        assert!(hmcsim_util_is_legal_blocksize(64));
        assert!(!hmcsim_util_is_legal_blocksize(48));
    }

    #[test]
    fn errstat_round_trip_through_flat_buffers() {
        // A device whose every vault access faults: the ERRSTAT set
        // by the device must survive encode → flat buffer → accessor.
        let mut config = crate::config::DeviceConfig::gen2_4link_4gb();
        config.fault = crate::fault::FaultPlan::seeded(3).with_vault_errors(1_000_000);
        let mut hmc = HmcSim::new(config).unwrap();
        let mut packet = [0u64; 34];
        let len =
            hmcsim_build_memrequest(0, 0x40, 1, HmcRqst::Rd16, 0, &[], &mut packet).unwrap();
        assert_eq!(hmcsim_send(&mut hmc, 0, 0, &packet[..len]), HMC_OK);
        for _ in 0..10 {
            hmcsim_clock(&mut hmc);
        }
        let mut out = [0u64; 34];
        let mut out_len = 0usize;
        assert_eq!(hmcsim_recv(&mut hmc, 0, 0, &mut out, &mut out_len), HMC_OK);

        let (mut errstat, mut dinv) = (0u8, true);
        assert_eq!(
            hmcsim_util_get_errstat(&out[..out_len], &mut errstat, &mut dinv),
            HMC_OK
        );
        assert_eq!(errstat, crate::fault::ERRSTAT_VAULT_FAULT);
        assert!(!dinv);
        let decoded = hmcsim_decode_memresponse(&out[..out_len]).unwrap();
        assert_eq!(decoded.errstat, errstat);
        assert_eq!(decoded.rsp_cmd, HmcResponse::Error);
        assert!(decoded.failed());

        // A fault-free device reports a clean response.
        let mut hmc = hmcsim_init(1, 4, 32, 64, 16, 4, 128).unwrap();
        let len =
            hmcsim_build_memrequest(0, 0x40, 2, HmcRqst::Rd16, 0, &[], &mut packet).unwrap();
        assert_eq!(hmcsim_send(&mut hmc, 0, 0, &packet[..len]), HMC_OK);
        for _ in 0..10 {
            hmcsim_clock(&mut hmc);
        }
        assert_eq!(hmcsim_recv(&mut hmc, 0, 0, &mut out, &mut out_len), HMC_OK);
        let (mut errstat, mut dinv) = (0xFFu8, true);
        assert_eq!(
            hmcsim_util_get_errstat(&out[..out_len], &mut errstat, &mut dinv),
            HMC_OK
        );
        assert_eq!(errstat, 0);
        assert!(!dinv);
        assert!(!hmcsim_decode_memresponse(&out[..out_len]).unwrap().failed());
        // Malformed buffers are rejected.
        assert_eq!(hmcsim_util_get_errstat(&[], &mut errstat, &mut dinv), HMC_ERROR);
        assert_eq!(hmcsim_util_get_errstat(&[0, 0], &mut errstat, &mut dinv), HMC_ERROR);
    }

    #[test]
    fn init_validates_geometry() {
        assert!(hmcsim_init(1, 3, 32, 64, 16, 4, 128).is_err(), "3 links invalid");
        assert!(hmcsim_init(1, 4, 30, 64, 16, 4, 128).is_err(), "30 vaults not quad-divisible");
        assert!(hmcsim_init(2, 4, 32, 64, 16, 4, 128).is_ok(), "chained init");
    }
}
