//! Soft-lock (leased lock) integration: lease expiry driven by real
//! device cycles through the full pipeline.

use hmcsim::cmc::ops::softlock::{
    SOFTLOCK_ACQUIRE_CMD, SOFTLOCK_RELEASE_CMD, SOFTLOCK_RENEW_CMD,
};
use hmcsim::prelude::*;

const LOCK: u64 = 0x4000;

fn sim_with_softlock() -> HmcSim {
    hmcsim::cmc::ops::register_builtin_libraries();
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    sim.load_cmc_library(0, hmcsim::cmc::ops::SOFTLOCK_LIBRARY).unwrap();
    sim
}

fn acquire(sim: &mut HmcSim, tid: u64, lease: u64) -> (bool, u64, u64) {
    let tag = sim
        .send_cmc(0, 0, SOFTLOCK_ACQUIRE_CMD, LOCK, vec![tid, lease])
        .unwrap()
        .unwrap();
    let rsp = sim.run_until_response(0, 0, tag, 1000).unwrap();
    (rsp.rsp.head.af, rsp.rsp.payload[0], rsp.rsp.payload[1])
}

#[test]
fn lease_expiry_through_the_pipeline() {
    let mut sim = sim_with_softlock();
    let (ok, owner, expiry) = acquire(&mut sim, 7, 40);
    assert!(ok);
    assert_eq!(owner, 7);
    assert!(expiry >= 40, "expiry is an absolute device cycle");

    // Immediately: the lease is live, a second claimant fails.
    let (ok, owner, _) = acquire(&mut sim, 9, 40);
    assert!(!ok);
    assert_eq!(owner, 7);

    // After the lease lapses, the claimant steals the lock.
    sim.clock_n(expiry + 1 - sim.cycle());
    let (ok, owner, _) = acquire(&mut sim, 9, 40);
    assert!(ok, "expired lease is stealable");
    assert_eq!(owner, 9);
}

#[test]
fn renew_keeps_the_claim_alive() {
    let mut sim = sim_with_softlock();
    let (_, _, first_expiry) = acquire(&mut sim, 7, 30);
    // Renew before expiry.
    let tag = sim
        .send_cmc(0, 0, SOFTLOCK_RENEW_CMD, LOCK, vec![7, 100])
        .unwrap()
        .unwrap();
    let rsp = sim.run_until_response(0, 0, tag, 1000).unwrap();
    assert!(rsp.rsp.head.af);
    let new_expiry = rsp.rsp.payload[1];
    assert!(new_expiry > first_expiry);

    // The other claimant still fails after the original expiry.
    sim.clock_n(first_expiry + 1 - sim.cycle());
    let (ok, owner, _) = acquire(&mut sim, 9, 10);
    assert!(!ok, "renewed lease survives the original window");
    assert_eq!(owner, 7);
}

#[test]
fn release_frees_immediately() {
    let mut sim = sim_with_softlock();
    acquire(&mut sim, 7, 10_000);
    let tag = sim
        .send_cmc(0, 0, SOFTLOCK_RELEASE_CMD, LOCK, vec![7, 0])
        .unwrap()
        .unwrap();
    let rsp = sim.run_until_response(0, 0, tag, 1000).unwrap();
    assert!(rsp.rsp.head.af);
    let (ok, owner, _) = acquire(&mut sim, 9, 10);
    assert!(ok);
    assert_eq!(owner, 9);
}

#[test]
fn non_owner_release_is_refused() {
    let mut sim = sim_with_softlock();
    acquire(&mut sim, 7, 10_000);
    let tag = sim
        .send_cmc(0, 0, SOFTLOCK_RELEASE_CMD, LOCK, vec![9, 0])
        .unwrap()
        .unwrap();
    let rsp = sim.run_until_response(0, 0, tag, 1000).unwrap();
    assert!(!rsp.rsp.head.af);
    let (ok, _, _) = acquire(&mut sim, 9, 10);
    assert!(!ok, "the lock is still held by 7");
}
