//! An HMC-Sim C-style harness, ported line for line onto the compat
//! layer (paper §IV-A "API Compatibility"): init, build packets into
//! flat `u64` buffers, send, clock, recv, decode — including a CMC
//! operation — exactly the flow an existing HMC-Sim 1.0/2.0 user
//! would follow.

use hmcsim::sim::compat::*;
use hmcsim::prelude::*;

#[test]
fn ported_c_harness_runs_end_to_end() {
    // hmcsim_init(&hmc, 1, 4, 32, 64, 16, ..., 4GB, 128)
    let mut hmc = hmcsim_init(1, 4, 32, 64, 16, 4, 128).expect("init");

    // hmcsim_load_cmc(&hmc, "libhmc_mutex.so")
    hmcsim::cmc::ops::register_builtin_libraries();
    assert_eq!(hmcsim_load_cmc(&mut hmc, "libhmc_mutex.so"), HMC_OK);

    let mut packet = [0u64; 34];
    let mut out = [0u64; 34];
    let mut out_len = 0usize;

    // Phase 1: streaming writes over all four links.
    for i in 0..16u64 {
        let payload: Vec<u64> = (0..8).map(|w| i * 100 + w).collect();
        let len = hmcsim_build_memrequest(
            0,
            0x10_000 + i * 64,
            i as u16,
            HmcRqst::Wr64,
            (i % 4) as u8,
            &payload,
            &mut packet,
        )
        .expect("build");
        // Retry-on-stall loop, as C harnesses do.
        loop {
            match hmcsim_send(&mut hmc, 0, (i % 4) as usize, &packet[..len]) {
                HMC_OK => break,
                HMC_STALL => {
                    hmcsim_clock(&mut hmc);
                }
                other => panic!("send failed: {other}"),
            }
        }
    }

    // Drain the write acks.
    let mut acks = 0;
    while acks < 16 {
        hmcsim_clock(&mut hmc);
        for link in 0..4 {
            while hmcsim_recv(&mut hmc, 0, link, &mut out, &mut out_len) == HMC_OK {
                let d = hmcsim_decode_memresponse(&out[..out_len]).expect("decode");
                assert_eq!(d.rsp_cmd, HmcResponse::WrRs);
                acks += 1;
            }
        }
    }

    // Phase 2: read one line back and check the data.
    let len = hmcsim_build_memrequest(0, 0x10_000 + 5 * 64, 99, HmcRqst::Rd64, 1, &[], &mut packet)
        .expect("build read");
    assert_eq!(hmcsim_send(&mut hmc, 0, 1, &packet[..len]), HMC_OK);
    let d = loop {
        hmcsim_clock(&mut hmc);
        if hmcsim_recv(&mut hmc, 0, 1, &mut out, &mut out_len) == HMC_OK {
            break hmcsim_decode_memresponse(&out[..out_len]).expect("decode");
        }
    };
    assert_eq!(d.tag, 99);
    assert_eq!(d.payload, (0..8).map(|w| 500 + w).collect::<Vec<u64>>());

    // Phase 3: a CMC lock through the raw-packet path (CMC125 is a
    // 2-FLIT request: [head, tid, 0, tail]).
    let req = Request::new_cmc(
        125,
        2,
        Tag::new(7).unwrap(),
        0x20_000,
        Cub::new(0).unwrap(),
        vec![42, 0],
    )
    .unwrap();
    let raw: Vec<u64> = {
        let mut v = vec![req.head.encode()];
        v.extend_from_slice(&req.payload);
        v.push(req.tail.encode());
        v
    };
    assert_eq!(hmcsim_send(&mut hmc, 0, 0, &raw), HMC_OK);
    let d = loop {
        hmcsim_clock(&mut hmc);
        if hmcsim_recv(&mut hmc, 0, 0, &mut out, &mut out_len) == HMC_OK {
            break hmcsim_decode_memresponse(&out[..out_len]).expect("decode");
        }
    };
    assert_eq!(d.rsp_cmd, HmcResponse::WrRs, "hmc_lock responds WR_RS");
    assert_eq!(d.payload[0], 1, "lock acquired");
    assert!(d.af);

    // JTAG sanity, as the original harnesses end with.
    let mut feat = 0u64;
    assert_eq!(hmcsim_jtag_reg_read(&hmc, 0, hmcsim::sim::regs::REG_FEAT, &mut feat), HMC_OK);
    assert_eq!(feat, 0x44);
}
