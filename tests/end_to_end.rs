//! End-to-end integration: every command class through the full
//! pipeline (types → sim → mem), verified against direct-memory
//! oracles.

use hmcsim::prelude::*;

fn sim() -> HmcSim {
    HmcSim::new(DeviceConfig::gen2_4link_4gb()).expect("valid config")
}

fn roundtrip(sim: &mut HmcSim, link: usize, cmd: HmcRqst, addr: u64, payload: Vec<u64>) -> hmcsim::sim::TrackedResponse {
    let tag = sim
        .send_simple(0, link, cmd, addr, payload)
        .expect("send")
        .expect("non-posted");
    sim.run_until_response(0, link, tag, 10_000).expect("response")
}

#[test]
fn every_read_size_round_trips() {
    let mut sim = sim();
    for (i, cmd) in [
        HmcRqst::Rd16,
        HmcRqst::Rd32,
        HmcRqst::Rd48,
        HmcRqst::Rd64,
        HmcRqst::Rd80,
        HmcRqst::Rd96,
        HmcRqst::Rd112,
        HmcRqst::Rd128,
        HmcRqst::Rd256,
    ]
    .into_iter()
    .enumerate()
    {
        let bytes = cmd.fixed_info().unwrap().data_bytes as usize;
        let addr = 0x10_0000 + (i as u64) * 0x1000;
        let data: Vec<u64> = (0..bytes as u64 / 8).map(|w| w * 0x1111 + i as u64).collect();
        for (w, &v) in data.iter().enumerate() {
            sim.mem_write_u64(0, addr + (w as u64) * 8, v).unwrap();
        }
        let rsp = roundtrip(&mut sim, i % 4, cmd, addr, vec![]);
        assert_eq!(rsp.rsp.head.cmd, HmcResponse::RdRs, "{cmd}");
        assert_eq!(rsp.rsp.payload, data, "{cmd} data");
        assert_eq!(rsp.rsp.flits() as usize, 1 + bytes / 16, "{cmd} rsp flits");
    }
}

#[test]
fn every_write_size_round_trips() {
    let mut sim = sim();
    for (i, cmd) in [
        HmcRqst::Wr16,
        HmcRqst::Wr32,
        HmcRqst::Wr48,
        HmcRqst::Wr64,
        HmcRqst::Wr80,
        HmcRqst::Wr96,
        HmcRqst::Wr112,
        HmcRqst::Wr128,
        HmcRqst::Wr256,
    ]
    .into_iter()
    .enumerate()
    {
        let bytes = cmd.fixed_info().unwrap().data_bytes as usize;
        let addr = 0x20_0000 + (i as u64) * 0x1000;
        let data: Vec<u64> = (0..bytes as u64 / 8).map(|w| w.wrapping_mul(0x9E37) ^ i as u64).collect();
        let rsp = roundtrip(&mut sim, i % 4, cmd, addr, data.clone());
        assert_eq!(rsp.rsp.head.cmd, HmcResponse::WrRs, "{cmd}");
        for (w, &v) in data.iter().enumerate() {
            assert_eq!(sim.mem_read_u64(0, addr + (w as u64) * 8).unwrap(), v, "{cmd} word {w}");
        }
    }
}

#[test]
fn every_posted_write_lands_silently() {
    let mut sim = sim();
    for (i, cmd) in [
        HmcRqst::PWr16,
        HmcRqst::PWr32,
        HmcRqst::PWr48,
        HmcRqst::PWr64,
        HmcRqst::PWr80,
        HmcRqst::PWr96,
        HmcRqst::PWr112,
        HmcRqst::PWr128,
        HmcRqst::PWr256,
    ]
    .into_iter()
    .enumerate()
    {
        let bytes = cmd.fixed_info().unwrap().data_bytes as usize;
        let addr = 0x30_0000 + (i as u64) * 0x1000;
        let data: Vec<u64> = (0..bytes as u64 / 8).map(|w| w + 7).collect();
        let tag = sim.send_simple(0, i % 4, cmd, addr, data.clone()).unwrap();
        assert!(tag.is_none(), "{cmd} is posted");
    }
    sim.drain(10_000);
    for link in 0..4 {
        assert_eq!(sim.pending_responses(0, link), 0, "posted writes answer nothing");
    }
    assert_eq!(sim.mem_read_u64(0, 0x30_0000).unwrap(), 7);
    assert_eq!(sim.stats(0).unwrap().posted_writes, 9);
}

#[test]
fn atomics_through_pipeline_match_amo_oracle() {
    // Run each data-returning atomic through the full pipeline and
    // compare against hmc-mem's execute applied to a shadow store.
    use hmcsim::mem::{execute, SparseMemory};
    let cases: Vec<(HmcRqst, Vec<u64>)> = vec![
        (HmcRqst::TwoAddS8R, vec![5, 7]),
        (HmcRqst::AddS16R, vec![1, 0]),
        (HmcRqst::Xor16, vec![0xFF, 0xAA]),
        (HmcRqst::Or16, vec![0x0F, 0]),
        (HmcRqst::Nor16, vec![1, 2]),
        (HmcRqst::And16, vec![0xF0, u64::MAX]),
        (HmcRqst::Nand16, vec![3, 3]),
        (HmcRqst::CasGt8, vec![9, 2]),
        (HmcRqst::CasLt8, vec![9, 200]),
        (HmcRqst::CasEq8, vec![50, 0x1234]),
        (HmcRqst::CasGt16, vec![1, 0]),
        (HmcRqst::CasLt16, vec![u64::MAX, u64::MAX]),
        (HmcRqst::CasZero16, vec![4, 4]),
        (HmcRqst::Bwr8R, vec![0xFF00, 0xFFFF]),
        (HmcRqst::Swap16, vec![111, 222]),
    ];
    let mut sim = sim();
    let shadow = SparseMemory::new(4 << 30);
    for (i, (cmd, operand)) in cases.into_iter().enumerate() {
        let addr = 0x40_0000 + (i as u64) * 0x100;
        let init = [0x1234u64.wrapping_mul(i as u64 + 1), 0x9999];
        sim.mem_write_u64(0, addr, init[0]).unwrap();
        sim.mem_write_u64(0, addr + 8, init[1]).unwrap();
        shadow.write_u64(addr, init[0]).unwrap();
        shadow.write_u64(addr + 8, init[1]).unwrap();

        let expect = execute(cmd, &shadow, addr, &operand).expect("oracle");
        let rsp = roundtrip(&mut sim, i % 4, cmd, addr, operand);
        assert_eq!(rsp.rsp.head.af, expect.af, "{cmd} AF");
        let mut want = expect.payload.clone();
        want.resize(rsp.rsp.payload.len(), 0);
        assert_eq!(rsp.rsp.payload, want, "{cmd} payload");
        assert_eq!(
            sim.mem_read_u64(0, addr).unwrap(),
            shadow.read_u64(addr).unwrap(),
            "{cmd} memory lo"
        );
        assert_eq!(
            sim.mem_read_u64(0, addr + 8).unwrap(),
            shadow.read_u64(addr + 8).unwrap(),
            "{cmd} memory hi"
        );
    }
}

#[test]
fn flow_packets_take_no_tag_and_are_absorbed() {
    let mut sim = sim();
    for cmd in [HmcRqst::Null, HmcRqst::Pret, HmcRqst::Tret, HmcRqst::Irtry] {
        let tag = sim.send_simple(0, 0, cmd, 0, vec![]).unwrap();
        assert!(tag.is_none(), "{cmd} must not hold a tag");
    }
    sim.drain(100);
    assert_eq!(sim.pending_responses(0, 0), 0);
    assert_eq!(sim.stats(0).unwrap().flow_packets, 4);
    // The tag pool is untouched: a full pool's worth of reads still works.
    for _ in 0..4 {
        let tag = sim.send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![]).unwrap().unwrap();
        sim.run_until_response(0, 0, tag, 100).unwrap();
    }
}

#[test]
fn cache_rmw_preserves_the_rest_of_the_line() {
    use hmcsim::workloads::kernels::counter::{CounterKernel, CounterKernelConfig, CounterMode};
    let mut sim = sim();
    // Plant data in the counter's cache line beside the counter word.
    sim.mem_write_u64(0, 0x8008, 0xFEED).unwrap();
    sim.mem_write_u64(0, 0x8038, 0xBEEF).unwrap();
    let result = CounterKernel::new(CounterKernelConfig {
        threads: 1,
        increments_per_thread: 3,
        counter_addr: 0x8000,
        mode: CounterMode::CacheRmw,
        ..Default::default()
    })
    .run(&mut sim)
    .unwrap();
    assert_eq!(result.final_value, 3);
    assert_eq!(sim.mem_read_u64(0, 0x8008).unwrap(), 0xFEED, "line data preserved");
    assert_eq!(sim.mem_read_u64(0, 0x8038).unwrap(), 0xBEEF);
}

#[test]
fn eq_probes_set_af_without_data() {
    let mut sim = sim();
    sim.mem_write_u64(0, 0x50_0000, 0x42).unwrap();
    let rsp = roundtrip(&mut sim, 0, HmcRqst::Eq8, 0x50_0000, vec![0x42, 0]);
    assert!(rsp.rsp.head.af);
    assert_eq!(rsp.rsp.flits(), 1);
    assert!(rsp.rsp.payload.is_empty());
    let rsp = roundtrip(&mut sim, 0, HmcRqst::Eq8, 0x50_0000, vec![0x43, 0]);
    assert!(!rsp.rsp.head.af);
}

#[test]
fn cmc_extras_through_pipeline() {
    hmcsim::cmc::ops::register_builtin_libraries();
    let mut sim = sim();
    sim.load_cmc_library(0, hmcsim::cmc::ops::EXTRAS_LIBRARY).unwrap();

    // popcount (custom response code, no request payload)
    sim.mem_write_u64(0, 0x60_0000, 0xFF00FF).unwrap();
    let tag = sim
        .send_cmc(0, 0, hmcsim::cmc::ops::extras::POPCNT8_CMD, 0x60_0000, vec![])
        .unwrap()
        .unwrap();
    let rsp = sim.run_until_response(0, 0, tag, 1000).unwrap();
    assert_eq!(
        rsp.rsp.head.cmd,
        HmcResponse::RspCmc(hmcsim::cmc::ops::extras::POPCNT8_RSP_CODE)
    );
    assert_eq!(rsp.rsp.payload[0], 16);

    // fetch-max
    sim.mem_write_u64(0, 0x60_0010, 10).unwrap();
    let tag = sim
        .send_cmc(0, 1, hmcsim::cmc::ops::extras::FMAX8_CMD, 0x60_0010, vec![99, 0])
        .unwrap()
        .unwrap();
    let rsp = sim.run_until_response(0, 1, tag, 1000).unwrap();
    assert!(rsp.rsp.head.af);
    assert_eq!(rsp.rsp.payload[0], 10);
    assert_eq!(sim.mem_read_u64(0, 0x60_0010).unwrap(), 99);

    // posted fill: no tag, memory mutated after drain
    let tag = sim
        .send_cmc(0, 2, hmcsim::cmc::ops::extras::PFILL16_CMD, 0x60_0020, vec![0xAB, 0])
        .unwrap();
    assert!(tag.is_none());
    sim.drain(1000);
    assert_eq!(sim.mem_read_u64(0, 0x60_0020).unwrap(), 0xAB);
    assert_eq!(sim.mem_read_u64(0, 0x60_0028).unwrap(), 0xAB);
}

#[test]
fn unloaded_then_reloaded_cmc_slot() {
    hmcsim::cmc::ops::register_builtin_libraries();
    let mut sim = sim();
    sim.load_cmc_library(0, hmcsim::cmc::ops::MUTEX_LIBRARY).unwrap();
    sim.unload_cmc(0, 125).unwrap();
    // A packet for the unloaded code now errors.
    let req = Request::new_cmc(
        125,
        2,
        Tag::new(9).unwrap(),
        0x4000,
        Cub::new(0).unwrap(),
        vec![1, 0],
    )
    .unwrap();
    sim.send(0, 0, req).unwrap();
    sim.clock_n(10);
    let rsp = sim.recv(0, 0).expect("error response");
    assert_eq!(rsp.rsp.head.cmd, HmcResponse::Error);
    // Reloading the whole library fails (126/127 still busy) and the
    // failed load is atomic — 125 stays free, so a single-op register
    // succeeds afterwards.
    assert!(sim.load_cmc_library(0, hmcsim::cmc::ops::MUTEX_LIBRARY).is_err());
    sim.load_cmc(0, Box::new(hmcsim::cmc::ops::mutex::HmcLock)).unwrap();
    assert_eq!(sim.cmc_registrations(0).unwrap().len(), 3);
}

#[test]
fn wire_packets_survive_pack_unpack_through_flits() {
    // Cross-crate check: a request built by the host API, serialized
    // to FLITs, deserialized, and compared.
    let req = Request::new(
        HmcRqst::Wr64,
        Tag::new(77).unwrap(),
        0xABCD00,
        Cub::new(0).unwrap(),
        (0..8u64).collect::<Vec<u64>>(),
    )
    .unwrap();
    let flits = req.pack();
    assert_eq!(flits.len(), 5);
    let back = Request::unpack(&flits).unwrap();
    assert_eq!(back.head, req.head);
    assert_eq!(back.payload, req.payload);
}
