//! Perfetto export integration tests: a golden-file pin of the
//! trace-event JSON, the byte-identity contract across engine
//! configurations, and the forensic-dump embedding of the flight
//! recorder timeline.
//!
//! The golden file lives in `tests/golden/`; regenerate it after an
//! intentional export-format change with `BLESS=1 cargo test --test
//! perfetto` and review the diff like any other code change.

use hmcsim::cmc::ops;
use hmcsim::prelude::*;
use hmcsim::sim::perfetto::{self, PerfettoOptions};
use hmcsim::sim::FlightSnapshot;
use hmcsim::workloads::{MutexKernel, MutexKernelConfig};

/// The pinned mutex evaluation (16 threads) with the flight recorder
/// attached, under the given engine configuration.
fn traced_run(mode: ExecMode, skip: SkipMode) -> FlightSnapshot {
    ops::register_builtin_libraries();
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    sim.set_exec_mode(mode);
    sim.set_skip_mode(skip);
    sim.enable_flight_recorder(4096);
    sim.load_cmc_library(0, ops::MUTEX_LIBRARY).unwrap();
    MutexKernel::new(MutexKernelConfig { threads: 16, ..Default::default() })
        .run(&mut sim)
        .unwrap();
    sim.flight_snapshot().expect("recorder attached")
}

/// Compares `rendered` against the golden file, or rewrites the golden
/// file when `BLESS` is set in the environment.
fn check_golden(rendered: &str, name: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with BLESS=1", path.display()));
    assert_eq!(
        rendered,
        golden,
        "{name} drifted from the golden export; if intentional, regenerate with \
         BLESS=1 cargo test --test perfetto and review the diff"
    );
}

#[test]
fn golden_perfetto_export() {
    let snap = traced_run(ExecMode::Sequential, SkipMode::Off);
    check_golden(&perfetto::export(&snap, &PerfettoOptions::default()), "perfetto.json");
}

#[test]
fn export_has_all_event_phases_and_no_drops() {
    let snap = traced_run(ExecMode::Parallel { threads: 4 }, SkipMode::On);
    assert!(!snap.is_empty(), "timeline retained");
    assert_eq!(snap.lanes.iter().map(|l| l.dropped).sum::<u64>(), 0, "capacity ample");
    let doc = perfetto::export(&snap, &PerfettoOptions::default());
    for phase in ["\"ph\":\"M\"", "\"ph\":\"X\"", "\"ph\":\"s\"", "\"ph\":\"f\""] {
        assert!(doc.contains(phase), "export missing {phase}");
    }
    assert!(doc.contains("\"displayTimeUnit\""), "Chrome trace envelope present");
}

/// The flight recorder observes the cycle domain, not the worker
/// threads: the full export (engine spans included) must be
/// byte-identical at every parallel pool width, for both skip modes.
#[test]
fn export_is_byte_identical_across_thread_counts() {
    for skip in [SkipMode::Off, SkipMode::On] {
        let reference =
            perfetto::export(&traced_run(ExecMode::Parallel { threads: 1 }, skip), &PerfettoOptions::default());
        assert!(reference.contains("\"ph\""), "non-empty export");
        for threads in [2usize, 8] {
            let other = perfetto::export(
                &traced_run(ExecMode::Parallel { threads }, skip),
                &PerfettoOptions::default(),
            );
            assert_eq!(reference, other, "export diverged at {threads} threads ({skip:?})");
        }
    }
}

/// Engine spans legitimately differ across engines (the sequential
/// engine plans nothing; the skipping engine jumps). The packet
/// timeline does not: with engine spans filtered out, the export is
/// byte-identical across every engine combination.
#[test]
fn packet_timeline_is_invariant_across_engines() {
    let packets_only = PerfettoOptions { engine: false };
    let reference = perfetto::export(
        &traced_run(ExecMode::Sequential, SkipMode::Off),
        &packets_only,
    );
    assert!(reference.contains("\"ph\":\"X\""), "non-empty packet timeline");
    for mode in [ExecMode::Sequential, ExecMode::Parallel { threads: 8 }] {
        for skip in [SkipMode::Off, SkipMode::On] {
            let other = perfetto::export(&traced_run(mode, skip), &packets_only);
            assert_eq!(reference, other, "packet timeline diverged: {mode:?} {skip:?}");
        }
    }
}

#[test]
fn forensic_dump_embeds_the_flight_timeline() {
    // With the recorder attached, a sanitizer forensic dump carries
    // the structured timeline as a top-level `traceEvents` key — the
    // dump file itself opens in ui.perfetto.dev.
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    sim.enable_sanitizer(SanitizerConfig::report());
    sim.enable_flight_recorder(1024);
    let tag = sim.send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![]).unwrap().unwrap();
    sim.run_until_response(0, 0, tag, 100).unwrap();

    let phantom = Response::new(
        HmcResponse::RdRs,
        Tag::new(9).unwrap(),
        Slid::new(0).unwrap(),
        Cub::new(0).unwrap(),
        vec![0, 0],
    )
    .unwrap();
    sim.debug_inject_phantom_response(0, 0, phantom);
    sim.clock_n(4);
    let dump = sim.take_forensic_dump().expect("violation produced a dump");
    let flight = dump.flight.as_ref().expect("flight timeline embedded in dump");
    assert!(!flight.is_empty(), "timeline is non-empty");
    let json = dump.to_json();
    assert!(json.contains("\"traceEvents\":["), "dump JSON carries the timeline");
    assert!(json.contains("\"ph\":\"X\""), "timeline has slices");
}

#[test]
fn flight_snapshot_survives_checkpoint_restore() {
    // The recorder rides along in snapshots: a restored run resumes
    // with the pre-checkpoint timeline intact (forensics across a
    // crash), while the fingerprint stays observer-blind.
    ops::register_builtin_libraries();
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    sim.enable_flight_recorder(1024);
    sim.load_cmc_library(0, ops::MUTEX_LIBRARY).unwrap();
    MutexKernel::new(MutexKernelConfig { threads: 4, ..Default::default() })
        .run(&mut sim)
        .unwrap();
    let before = sim.flight_snapshot().unwrap();
    assert!(!before.is_empty());

    let snap = sim.snapshot();
    let mut restored = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    restored.enable_flight_recorder(1024);
    restored.restore(&snap).unwrap();
    let after = restored.flight_snapshot().unwrap();
    assert_eq!(
        perfetto::export(&before, &PerfettoOptions::default()),
        perfetto::export(&after, &PerfettoOptions::default()),
        "restored timeline renders identically"
    );
    assert_eq!(sim.state_fingerprint(), restored.state_fingerprint());
}
