//! Timing-backend selection through the configuration and snapshot
//! codecs.
//!
//! Locks down three properties of the `TimingSelect` seam:
//!
//! 1. **Golden shape** — the JSON the codecs emit for each backend
//!    (selection strings and the per-device snapshot `timing` section)
//!    is pinned in `tests/golden/timing_codec.json`; regenerate after
//!    an intentional format change with `BLESS=1 cargo test --test
//!    timing_config` and review the diff.
//! 2. **Round-trip fidelity** — a snapshot taken under any backend
//!    (shadow banks and divergence stats included) reparses to the
//!    same JSON byte for byte, and a restored simulation resumes
//!    bit-identically to the uninterrupted one.
//! 3. **Strict-but-compatible parsing** — a snapshot written before
//!    the timing seam (no `timing` key) loads as the fixed backend,
//!    while a present-but-unknown backend name is rejected loudly.

use hmcsim::prelude::*;
use hmcsim::sim::{Json, RefreshConfig, RowPolicy, SimSnapshot};

fn row_heavy_config() -> DeviceConfig {
    let mut d = DeviceConfig::gen2_4link_4gb();
    d.bank_latency = 2;
    d.bank_timing.policy = RowPolicy::OpenPage;
    d.bank_timing.row_hit = 1;
    d.bank_timing.row_miss = 6;
    d.refresh = Some(RefreshConfig { interval: 96, duration: 4 });
    d
}

/// A short deterministic traffic burst that touches several banks, so
/// every backend accumulates latency-class stats (and Validated a
/// shadow divergence record).
fn run_burst(timing: TimingSelect) -> HmcSim {
    let mut sim = HmcSim::new(row_heavy_config()).unwrap();
    sim.set_timing_model(timing);
    for i in 0..12u64 {
        let tag = sim
            .send_simple(0, 0, HmcRqst::Rd16, 0x40 + i * 0x1000, vec![])
            .unwrap()
            .unwrap();
        sim.run_until_response(0, 0, tag, 200).unwrap();
    }
    sim
}

/// Extracts the `timing` section of device 0 from a snapshot's JSON.
fn timing_section(snap: &SimSnapshot) -> Json {
    let json = snap.to_json_value();
    let devices = json
        .as_obj()
        .unwrap()
        .iter()
        .find(|(k, _)| k == "devices")
        .map(|(_, v)| v.as_arr().unwrap())
        .unwrap();
    devices[0]
        .as_obj()
        .unwrap()
        .iter()
        .find(|(k, _)| k == "timing")
        .map(|(_, v)| v.clone())
        .expect("device snapshot carries a timing section")
}

fn check_golden(rendered: &str, name: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with BLESS=1", path.display()));
    assert_eq!(
        rendered,
        golden,
        "{name} drifted from the golden codec shape; if intentional, regenerate with \
         BLESS=1 cargo test --test timing_config and review the diff"
    );
}

#[test]
fn golden_timing_codec_shapes() {
    let backends =
        [TimingSelect::FixedLatency, TimingSelect::RowBuffer, TimingSelect::Validated];
    let mut doc: Vec<(String, Json)> = vec![(
        "select_names".into(),
        Json::Arr(
            backends
                .iter()
                .map(|&b| hmcsim::sim::scenario::timing_select_to_json(b))
                .collect(),
        ),
    )];
    for timing in backends {
        let sim = run_burst(timing);
        doc.push((format!("snapshot_{}", timing.name()), timing_section(&sim.snapshot())));
    }
    let mut rendered = Json::Obj(doc).render();
    rendered.push('\n');
    check_golden(&rendered, "timing_codec.json");
}

/// Full-fidelity round trip: for every backend, snapshot → JSON →
/// parse → JSON must be byte-identical (stats histograms and the
/// validated shadow bank array included), and restoring the parsed
/// snapshot must resume bit-identically to the uninterrupted run.
#[test]
fn snapshot_json_round_trips_every_backend() {
    for timing in
        [TimingSelect::FixedLatency, TimingSelect::RowBuffer, TimingSelect::Validated]
    {
        let mut original = run_burst(timing);
        let snap = original.snapshot();
        let text = snap.to_json_value().render();
        let reparsed = SimSnapshot::from_json_value(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(
            reparsed.to_json_value().render(),
            text,
            "{timing:?}: snapshot JSON drifted across a parse round trip"
        );

        let mut restored = HmcSim::new(row_heavy_config()).unwrap();
        restored.restore(&reparsed).unwrap();
        assert_eq!(restored.timing_select(), timing, "restored backend selection");
        assert_eq!(restored.timing_stats(0).unwrap(), original.timing_stats(0).unwrap());
        // Resume both sides with identical traffic: still lockstep.
        for sim in [&mut original, &mut restored] {
            let tag = sim.send_simple(0, 0, HmcRqst::Rd16, 0x9000, vec![]).unwrap().unwrap();
            sim.run_until_response(0, 0, tag, 200).unwrap();
        }
        assert_eq!(
            original.state_fingerprint(),
            restored.state_fingerprint(),
            "{timing:?}: restored run diverged from the uninterrupted one"
        );
        assert_eq!(restored.timing_stats(0).unwrap(), original.timing_stats(0).unwrap());
    }
}

/// A checkpoint written before the timing seam has no `timing` key:
/// it must load as the fixed backend (the pre-trait model), not fail.
#[test]
fn legacy_snapshot_without_timing_key_loads_as_fixed() {
    let sim = run_burst(TimingSelect::FixedLatency);
    let mut json = sim.snapshot().to_json_value();
    if let Json::Obj(top) = &mut json {
        for (k, v) in top.iter_mut() {
            if k == "devices" {
                if let Json::Arr(devices) = v {
                    for dev in devices {
                        if let Json::Obj(fields) = dev {
                            fields.retain(|(k, _)| k != "timing");
                        }
                    }
                }
            }
        }
    }
    let snap = SimSnapshot::from_json_value(&json).expect("legacy snapshot must load");
    let mut restored = HmcSim::new(row_heavy_config()).unwrap();
    restored.restore(&snap).unwrap();
    assert_eq!(restored.timing_select(), TimingSelect::FixedLatency);
}

/// An unknown backend name in a snapshot is a corruption, not a
/// default: the parse must fail and name both the bad value and the
/// accepted ones.
#[test]
fn unknown_backend_name_is_rejected_loudly() {
    let sim = run_burst(TimingSelect::RowBuffer);
    let text = sim
        .snapshot()
        .to_json_value()
        .render()
        .replace("\"row_buffer\"", "\"quantum_foam\"");
    let err = SimSnapshot::from_json_value(&Json::parse(&text).unwrap()).unwrap_err();
    assert!(
        err.message.contains("unknown timing backend \"quantum_foam\""),
        "bad value not named: {}",
        err.message
    );
    assert!(
        err.message.contains("fixed, row_buffer or validated"),
        "accepted values not listed: {}",
        err.message
    );
}

/// The `HMCSIM_TIMING` parser (used by the CI matrix) accepts every
/// backend name and its aliases, and rejects garbage with the
/// variable named in the error — a typo in a CI matrix must fail the
/// job, not silently run the wrong model.
#[test]
fn env_value_parser_is_strict() {
    for (raw, want) in [
        ("fixed", TimingSelect::FixedLatency),
        ("fixed_latency", TimingSelect::FixedLatency),
        ("row_buffer", TimingSelect::RowBuffer),
        ("row-buffer", TimingSelect::RowBuffer),
        ("validated", TimingSelect::Validated),
        (" Validated ", TimingSelect::Validated),
    ] {
        assert_eq!(TimingSelect::parse_env_value(raw).unwrap(), want, "{raw:?}");
    }
    for raw in ["", "quick", "rowbufferx"] {
        let err = TimingSelect::parse_env_value(raw).unwrap_err().to_string();
        assert!(err.contains("HMCSIM_TIMING"), "variable not named for {raw:?}: {err}");
    }
}
