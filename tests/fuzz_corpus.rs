//! Tier-1 replay of the checked-in fuzz reproducer corpus.
//!
//! Every file in `corpus/` is a versioned, self-contained scenario
//! that once exposed a defect (or anchors a kernel/engine pairing as
//! a standing regression). This suite replays the whole directory
//! under `cargo test`, and locks down the loader's strictness: a file
//! with an unknown schema version or an unknown field must be
//! rejected loudly, with the file path and version in the message.

use hmc_fuzz::corpus::{load_corpus_dir, load_scenario_file};
use hmc_fuzz::runner::{run_scenario, RunnerConfig};
use hmc_fuzz::scenario::Scenario;
use hmc_fuzz::shrink::shrink;
use hmc_fuzz::ScenarioGenerator;
use hmc_sim::{DeviceConfig, ExecMode, FaultPlan, SkipMode};
use hmc_workloads::KernelDescriptor;
use std::path::PathBuf;
use std::time::Duration;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("hmcfuzz-tier1-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn corpus_is_present_and_replays_clean() {
    let corpus = load_corpus_dir(&corpus_dir()).expect("corpus must load");
    assert!(
        corpus.len() >= 8,
        "expected the seeded corpus (>= 8 scenarios), found {}",
        corpus.len()
    );
    let config = RunnerConfig { timeout: Duration::from_secs(120), canary: false };
    for (path, scenario) in corpus {
        let outcome = run_scenario(&scenario, &config);
        assert!(
            !outcome.is_failure(),
            "{}: corpus replay failed with {:?}",
            path.display(),
            outcome
        );
    }
}

#[test]
fn corpus_covers_every_kernel_kind() {
    let corpus = load_corpus_dir(&corpus_dir()).unwrap();
    let kernels: std::collections::BTreeSet<&str> =
        corpus.iter().map(|(_, s)| s.kernel.name()).collect();
    for expected in ["raw_ops", "counter", "gups", "triad", "mutex", "barrier"] {
        assert!(kernels.contains(expected), "no corpus scenario exercises `{expected}`");
    }
}

/// The timing axis must stay anchored in the corpus: at least one
/// checked-in seed replays the row-buffer backend with a refresh plan
/// under a live fault plan, so refresh-aware bank timing keeps its
/// standing differential regression.
#[test]
fn corpus_anchors_row_buffer_timing_under_faults() {
    let corpus = load_corpus_dir(&corpus_dir()).unwrap();
    assert!(
        corpus.iter().any(|(_, s)| s.timing == hmc_sim::TimingSelect::RowBuffer
            && s.device.refresh.is_some()
            && !s.device.fault.is_none()),
        "no corpus scenario pairs RowBuffer timing with refresh and faults"
    );
}

#[test]
fn unknown_schema_version_is_rejected_with_path_and_version() {
    let dir = scratch_dir("badversion");
    let path = dir.join("future.json");
    let mut text = std::fs::read_to_string(
        corpus_dir().join("seed-05-counter.json"),
    )
    .unwrap();
    text = text.replace("\"schema_version\":1", "\"schema_version\":99");
    std::fs::write(&path, text).unwrap();
    let err = load_scenario_file(&path).unwrap_err();
    assert!(err.message.contains("future.json"), "no file path in: {}", err.message);
    assert!(err.message.contains("schema_version 99"), "no version in: {}", err.message);
    assert!(
        err.message.contains("version 1"),
        "message should state the supported version: {}",
        err.message
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unknown_field_is_rejected_with_path() {
    let dir = scratch_dir("badfield");
    let path = dir.join("extra.json");
    let mut text = std::fs::read_to_string(
        corpus_dir().join("seed-05-counter.json"),
    )
    .unwrap();
    text = text.replace("\"schema_version\":1", "\"schema_version\":1,\"surprise\":true");
    std::fs::write(&path, text).unwrap();
    let err = load_scenario_file(&path).unwrap_err();
    assert!(err.message.contains("extra.json"), "no file path in: {}", err.message);
    assert!(err.message.contains("surprise"), "no field name in: {}", err.message);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_file_is_rejected_with_path() {
    let dir = scratch_dir("truncated");
    let path = dir.join("cut.json");
    std::fs::write(&path, "{\"schema_version\":1,").unwrap();
    let err = load_scenario_file(&path).unwrap_err();
    assert!(err.message.contains("cut.json"), "no file path in: {}", err.message);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn generator_stream_is_reproducible_across_calls() {
    let take = |seed: u64| {
        let mut g = ScenarioGenerator::new(seed);
        (0..16).map(|_| g.next_scenario()).collect::<Vec<_>>()
    };
    assert_eq!(take(0xFEED), take(0xFEED));
}

/// The fabric axis must stay anchored in the corpus: at least one
/// checked-in seed replays a multi-cube ring under a live fault plan
/// (scheduled link outage included) with idle-cycle skipping on — the
/// corner where per-cube event horizons, fault delivery on idle cubes
/// and the skip engine all interact.
#[test]
fn corpus_anchors_ring_fabric_under_faults_and_skip() {
    let corpus = load_corpus_dir(&corpus_dir()).unwrap();
    assert!(
        corpus.iter().any(|(_, s)| matches!(
            s.fabric,
            hmc_fuzz::FabricTopology::Ring { .. }
        ) && s.skip == SkipMode::On
            && !s.device.fault.link_schedule.is_empty()),
        "no corpus scenario pairs a ring fabric with link outages and skip mode"
    );
}

/// Satellite 1 end-to-end: with the canary enabled, a scenario running
/// under skip mode must diverge on the stats axis, and the shrinker
/// must reduce it to a bounded-size reproducer.
#[test]
fn canary_divergence_is_found_and_shrunk() {
    let fat = Scenario {
        seed: 0xBADC0DE,
        device: {
            let mut d = DeviceConfig::gen2_8link_8gb();
            d.fault = FaultPlan::seeded(3).with_poison(8_000);
            d
        },
        kernel: KernelDescriptor::RawOps { ops: 80, seed: 13, gap: 6, drain: 256 },
        exec: ExecMode::Parallel { threads: 4 },
        skip: SkipMode::On,
        sanitizer: false,
        telemetry: true,
        trace: true,
        timing: hmc_sim::TimingSelect::RowBuffer,
        fabric: hmc_fuzz::FabricTopology::Chain { cubes: 3 },
    };
    let config = RunnerConfig { canary: true, ..Default::default() };
    let outcome = run_scenario(&fat, &config);
    assert_eq!(outcome.class(), "mismatch-stats", "canary must fire under skip mode");
    let report = shrink(&fat, &outcome, &config, 400);
    assert_eq!(report.outcome.class(), "mismatch-stats");
    assert!(
        report.scenario.weight() <= 24,
        "canary reproducer not minimal (weight {}): {:?}",
        report.scenario.weight(),
        report.scenario
    );
}
