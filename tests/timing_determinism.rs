//! Cross-backend timing determinism matrix.
//!
//! Every timing backend must uphold the engine determinism contracts
//! that `tests/no_perturbation.rs` pins for the default model: for a
//! fixed backend selection, the sequential reference, every parallel
//! thread count, and idle-cycle skipping all produce bit-identical
//! cycle counts, device-state fingerprints and stats. The backends are
//! allowed to differ *from each other* (that is the point of swappable
//! timing); they are never allowed to differ from themselves across
//! engine configurations.
//!
//! Backend selection is always made with an explicit
//! `set_timing_model` call, so this suite keeps its meaning even when
//! CI drives the rest of the test suite through `HMCSIM_TIMING`.

use hmcsim::cmc::ops;
use hmcsim::prelude::*;
use hmcsim::sim::{RefreshConfig, RowPolicy};
use hmcsim::workloads::kernels::triad::{TriadConfig, TriadKernel};
use hmcsim::workloads::{MutexKernel, MutexKernelConfig};

const BACKENDS: [TimingSelect; 3] =
    [TimingSelect::FixedLatency, TimingSelect::RowBuffer, TimingSelect::Validated];

const EXECS: [ExecMode; 4] = [
    ExecMode::Sequential,
    ExecMode::Parallel { threads: 1 },
    ExecMode::Parallel { threads: 2 },
    ExecMode::Parallel { threads: 8 },
];

const SKIPS: [SkipMode; 2] = [SkipMode::Off, SkipMode::On];

/// A configuration where every backend has something to do: live
/// row-buffer knobs and a staggered refresh plan. (Fault injection is
/// deliberately absent — poison and vault ERRSTATs hand the evaluation
/// kernels error payloads they do not retry. The faults × timing
/// pairing is anchored by `corpus/seed-07-*.json`, which replays the
/// row-buffer backend under poison and vault errors through the
/// fault-tolerant raw-ops differential runner.)
fn row_heavy_config() -> DeviceConfig {
    let mut d = DeviceConfig::gen2_4link_4gb();
    d.bank_latency = 2;
    d.bank_timing.policy = RowPolicy::OpenPage;
    d.bank_timing.row_hit = 1;
    d.bank_timing.row_miss = 6;
    d.refresh = Some(RefreshConfig { interval: 96, duration: 4 });
    d
}

type Observation = (u64, u64, u64, hmcsim::sim::DeviceStats);

/// Pure data path: exercises the planned parallel fast path and the
/// event-horizon clamp.
fn triad_obs(
    config: &DeviceConfig,
    timing: TimingSelect,
    exec: ExecMode,
    skip: SkipMode,
) -> Observation {
    let mut sim = HmcSim::new(config.clone()).unwrap();
    sim.set_exec_mode(exec);
    sim.set_skip_mode(skip);
    sim.set_timing_model(timing);
    let out = TriadKernel::new(TriadConfig { elements: 512, ..Default::default() })
        .run(&mut sim)
        .unwrap();
    (out.cycles, sim.cycle(), sim.state_fingerprint(), sim.stats(0).unwrap().clone())
}

/// CMC traffic: exercises the serial fallback inside parallel mode.
fn mutex_obs(
    config: &DeviceConfig,
    timing: TimingSelect,
    exec: ExecMode,
    skip: SkipMode,
) -> Observation {
    ops::register_builtin_libraries();
    let mut sim = HmcSim::new(config.clone()).unwrap();
    sim.set_exec_mode(exec);
    sim.set_skip_mode(skip);
    sim.set_timing_model(timing);
    sim.load_cmc_library(0, ops::MUTEX_LIBRARY).unwrap();
    let m = MutexKernel::new(MutexKernelConfig { threads: 8, ..Default::default() })
        .run(&mut sim)
        .unwrap()
        .metrics;
    (m.max_cycle(), sim.cycle(), sim.state_fingerprint(), sim.stats(0).unwrap().clone())
}

/// The full differential matrix: backend × exec × skip, on both the
/// default device and the row-heavy faulted one. Every cell must match
/// its backend's sequential/no-skip reference bit for bit — cycles,
/// fingerprint, and the whole stats block (latency histogram
/// included).
#[test]
fn every_backend_is_bit_identical_across_the_engine_matrix() {
    for config in [DeviceConfig::gen2_4link_4gb(), row_heavy_config()] {
        for timing in BACKENDS {
            let triad_ref = triad_obs(&config, timing, ExecMode::Sequential, SkipMode::Off);
            let mutex_ref = mutex_obs(&config, timing, ExecMode::Sequential, SkipMode::Off);
            for exec in EXECS {
                for skip in SKIPS {
                    assert_eq!(
                        triad_obs(&config, timing, exec, skip),
                        triad_ref,
                        "triad diverged: {timing:?} {exec:?} {skip:?}"
                    );
                    assert_eq!(
                        mutex_obs(&config, timing, exec, skip),
                        mutex_ref,
                        "mutex diverged: {timing:?} {exec:?} {skip:?}"
                    );
                }
            }
        }
    }
}

/// The fixed-latency backend IS the pre-trait engine: selecting it
/// explicitly must reproduce the `tests/no_perturbation.rs` pins
/// exactly (mutex Table VI anchors and the uncontended round-trip).
#[test]
fn fixed_latency_reproduces_the_pre_refactor_pins() {
    ops::register_builtin_libraries();
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    sim.set_timing_model(TimingSelect::FixedLatency);
    sim.load_cmc_library(0, ops::MUTEX_LIBRARY).unwrap();
    let m = MutexKernel::new(MutexKernelConfig { threads: 16, ..Default::default() })
        .run(&mut sim)
        .unwrap()
        .metrics;
    assert_eq!(m.min_cycle(), 19, "pinned mutex minimum");
    assert_eq!(m.max_cycle(), 49, "pinned mutex maximum");
    assert!((m.avg_cycle() - 40.56).abs() < 0.3, "avg {:.2}", m.avg_cycle());

    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    sim.set_timing_model(TimingSelect::FixedLatency);
    let tag = sim.send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![]).unwrap().unwrap();
    assert_eq!(sim.run_until_response(0, 0, tag, 100).unwrap().latency, 3);
}

/// On the stock configuration every row knob is zero and refresh is
/// off, so all three backends collapse to the same model: equivalent
/// by construction, proven bit-identical.
#[test]
fn backends_agree_exactly_on_the_default_config() {
    let config = DeviceConfig::gen2_4link_4gb();
    let reference = triad_obs(&config, TimingSelect::FixedLatency, ExecMode::Sequential, SkipMode::Off);
    for timing in [TimingSelect::RowBuffer, TimingSelect::Validated] {
        let got = triad_obs(&config, timing, ExecMode::Sequential, SkipMode::Off);
        assert_eq!(
            (got.0, got.1, got.2),
            (reference.0, reference.1, reference.2),
            "default-config run diverged under {timing:?}"
        );
    }
}

/// The row-buffer backend must actually be live when its knobs are —
/// otherwise the matrix equality above would be vacuous.
#[test]
fn row_buffer_departs_from_fixed_when_row_knobs_are_live() {
    let config = row_heavy_config();
    let fixed = triad_obs(&config, TimingSelect::FixedLatency, ExecMode::Sequential, SkipMode::Off);
    let row = triad_obs(&config, TimingSelect::RowBuffer, ExecMode::Sequential, SkipMode::Off);
    assert_ne!(
        (fixed.0, fixed.2),
        (row.0, row.2),
        "row-buffer backend had no observable effect on a row-heavy config"
    );
}

/// Validated mode: the primary fixed model drives all simulation
/// decisions (fingerprint equals the fixed backend's), while the
/// shadow row-buffer model accumulates a divergence histogram whose
/// population matches the per-access verdict counters.
#[test]
fn validated_tracks_fixed_and_accounts_for_every_access() {
    let config = row_heavy_config();
    let fixed = triad_obs(&config, TimingSelect::FixedLatency, ExecMode::Sequential, SkipMode::Off);

    let mut sim = HmcSim::new(config.clone()).unwrap();
    sim.set_timing_model(TimingSelect::Validated);
    let out = TriadKernel::new(TriadConfig { elements: 512, ..Default::default() })
        .run(&mut sim)
        .unwrap();
    assert_eq!(out.cycles, fixed.0, "validated primary must match the fixed backend");
    assert_eq!(sim.state_fingerprint(), fixed.2, "validated fingerprint must match fixed");

    let stats = sim.timing_stats(0).unwrap();
    let accesses = stats.hit_latency.count() + stats.miss_latency.count();
    assert!(accesses > 0, "triad produced no bank accesses");
    assert_eq!(
        stats.divergence.count(),
        accesses,
        "every access must land in the divergence histogram"
    );
    assert_eq!(
        stats.shadow_late + stats.shadow_early + stats.shadow_agree,
        accesses,
        "verdict counters must partition the access stream"
    );
    assert!(
        stats.shadow_late > 0,
        "a row-heavy shadow should finish late at least once (miss penalty + refresh)"
    );
}
