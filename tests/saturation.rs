//! Back-pressure and conservation under saturation: stalls surface to
//! the host, no packet is ever lost or duplicated, and the fabric
//! drains to quiescence.

use hmcsim::prelude::*;

#[test]
fn send_stall_surfaces_when_queues_fill() {
    let mut cfg = DeviceConfig::gen2_4link_4gb();
    cfg.xbar_queue_depth = 2;
    cfg.vault_queue_depth = 1;
    let mut sim = HmcSim::new(cfg).unwrap();
    // Fill the link 0 crossbar queue without clocking.
    let mut stalls = 0;
    for _ in 0..8 {
        match sim.send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![]) {
            Ok(_) => {}
            Err(HmcError::Stall) => stalls += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(stalls >= 6, "depth-2 queue must stall the rest, got {stalls}");
    assert!(sim.stats(0).unwrap().send_stalls >= 6);
}

#[test]
fn stalled_host_can_retry_to_completion() {
    let mut cfg = DeviceConfig::gen2_4link_4gb();
    cfg.xbar_queue_depth = 2;
    cfg.vault_queue_depth = 2;
    let mut sim = HmcSim::new(cfg).unwrap();
    let total = 200usize;
    let mut sent = 0usize;
    let mut received = 0usize;
    let mut guard = 0;
    while received < total {
        guard += 1;
        assert!(guard < 100_000, "saturated device must still make progress");
        if sent < total {
            // All to one vault: worst-case hot spot.
            match sim.send_simple(0, sent % 4, HmcRqst::Inc8, 0x40, vec![]) {
                Ok(_) => sent += 1,
                Err(HmcError::Stall) | Err(HmcError::TagsExhausted) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        sim.clock();
        for link in 0..4 {
            while sim.recv(0, link).is_some() {
                received += 1;
            }
        }
    }
    assert_eq!(sim.mem_read_u64(0, 0x40).unwrap(), total as u64, "every INC8 applied");
    assert!(sim.is_quiescent());
}

#[test]
fn packet_conservation_under_mixed_load() {
    // N non-posted sends -> exactly N responses, no more, no less.
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    let mut sent = 0u64;
    let cmds = [HmcRqst::Rd16, HmcRqst::Wr16, HmcRqst::Inc8, HmcRqst::Xor16, HmcRqst::Rd64];
    for i in 0..500u64 {
        let cmd = cmds[(i % cmds.len() as u64) as usize];
        let payload = match cmd.fixed_info().unwrap().rqst_flits {
            1 => vec![],
            _ => vec![i, i],
        };
        let addr = (i % 64) * 0x100; // spread over vaults, 16-aligned
        match sim.send_simple(0, (i % 4) as usize, cmd, addr, payload) {
            Ok(Some(_)) => sent += 1,
            Ok(None) => unreachable!("no posted command in the mix"),
            Err(HmcError::Stall) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
        sim.clock();
    }
    sim.drain(100_000);
    let mut received = 0u64;
    for link in 0..4 {
        while sim.recv(0, link).is_some() {
            received += 1;
        }
    }
    assert_eq!(received, sent, "exactly one response per non-posted request");
    assert_eq!(sim.stats(0).unwrap().responses, sent);
}

#[test]
fn tags_exhaust_and_recover() {
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    // Issue without ever clocking: the 2048-tag pool must run dry.
    let mut issued = 0;
    loop {
        match sim.send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![]) {
            Ok(Some(_)) => issued += 1,
            Err(HmcError::TagsExhausted) => break,
            Err(HmcError::Stall) => {
                // Crossbar full before tags ran out; drain a little
                // without delivering (clock only moves packets).
                sim.clock();
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(issued <= 2048, "pool must exhaust at the tag space");
    }
    // Drain everything; recv releases the tags.
    sim.drain(1_000_000);
    let mut drained = 0;
    while sim.recv(0, 0).is_some() {
        drained += 1;
    }
    assert_eq!(drained, issued);
    // The pool works again.
    assert!(sim.send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![]).unwrap().is_some());
}

#[test]
fn queue_high_water_marks_report_pressure() {
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    for _ in 0..100 {
        let _ = sim.send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![]);
        let _ = sim.send_simple(0, 1, HmcRqst::Rd16, 0x40, vec![]);
    }
    sim.drain(10_000);
    let hw = sim.vault_queue_high_water(0).unwrap();
    assert!(hw > 1, "the hot vault queued more than one request, got {hw}");
    assert!(hw <= 64, "never beyond the configured depth");
}
