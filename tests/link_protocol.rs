//! Link-layer protocol integration: token flow control and
//! transmission-error retry recovery.

use hmcsim::prelude::*;
use hmcsim::sim::LinkConfig;

#[test]
fn default_link_layer_is_inert() {
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    for _ in 0..50 {
        let tag = sim.send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![]).unwrap().unwrap();
        let rsp = sim.run_until_response(0, 0, tag, 100).unwrap();
        assert_eq!(rsp.latency, 3, "no protocol perturbation by default");
    }
    let stats = sim.link_stats(0, 0).unwrap();
    assert_eq!(stats.token_stalls, 0);
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.packets_sent, 50);
}

#[test]
fn token_exhaustion_stalls_the_transmitter() {
    let mut cfg = DeviceConfig::gen2_4link_4gb();
    cfg.link_config = LinkConfig { tokens: Some(4), ..Default::default() };
    let mut sim = HmcSim::new(cfg).unwrap();
    // Each RD16 is 1 FLIT: four fit, the fifth stalls on tokens.
    for _ in 0..4 {
        assert!(sim.send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![]).unwrap().is_some());
    }
    assert!(matches!(
        sim.send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![]),
        Err(HmcError::Stall)
    ));
    assert_eq!(sim.link_stats(0, 0).unwrap().token_stalls, 1);

    // The crossbar drains into the vaults, returning tokens.
    sim.clock_n(8);
    assert!(sim.send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![]).unwrap().is_some());
}

#[test]
fn tokens_account_flits_not_packets() {
    let mut cfg = DeviceConfig::gen2_4link_4gb();
    cfg.link_config = LinkConfig { tokens: Some(6), ..Default::default() };
    let mut sim = HmcSim::new(cfg).unwrap();
    // A WR64 is 5 FLITs: one fits, a second (5 more FLITs) does not,
    // but a 1-FLIT read still squeezes in.
    assert!(sim
        .send_simple(0, 0, HmcRqst::Wr64, 0x40, vec![0; 8])
        .unwrap()
        .is_some());
    assert!(sim.send_simple(0, 0, HmcRqst::Wr64, 0x80, vec![0; 8]).is_err());
    assert!(sim.send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![]).unwrap().is_some());
}

#[test]
fn injected_errors_recover_with_added_latency() {
    let mut cfg = DeviceConfig::gen2_4link_4gb();
    cfg.link_config = LinkConfig {
        error_period: Some(3),
        retry_latency: 8,
        ..Default::default()
    };
    let mut sim = HmcSim::new(cfg).unwrap();
    let mut latencies = Vec::new();
    for i in 0..9 {
        let tag = sim
            .send_simple(0, 0, HmcRqst::Rd16, (i % 4) * 0x100, vec![])
            .unwrap()
            .unwrap();
        let rsp = sim.run_until_response(0, 0, tag, 1000).unwrap();
        latencies.push(rsp.latency);
    }
    // Every third packet pays the retry exchange on top of the
    // 3-cycle round trip; everything still completes correctly.
    assert_eq!(latencies[0], 3);
    assert_eq!(latencies[1], 3);
    assert!(latencies[2] > 8, "errored packet pays retry latency, got {}", latencies[2]);
    assert_eq!(latencies[3], 3);
    assert!(latencies[5] > 8);
    assert_eq!(sim.link_stats(0, 0).unwrap().retries, 3);
}

#[test]
fn retries_do_not_lose_packets_under_load() {
    let mut cfg = DeviceConfig::gen2_4link_4gb();
    cfg.link_config = LinkConfig {
        error_period: Some(5),
        retry_latency: 4,
        ..Default::default()
    };
    let mut sim = HmcSim::new(cfg).unwrap();
    let mut sent = 0u64;
    for i in 0..300u64 {
        match sim.send_simple(0, (i % 4) as usize, HmcRqst::Inc8, 0x40, vec![]) {
            Ok(_) => sent += 1,
            Err(HmcError::Stall) | Err(HmcError::TagsExhausted) => {}
            Err(e) => panic!("unexpected: {e}"),
        }
        sim.clock();
    }
    sim.drain(100_000);
    let mut received = 0u64;
    for link in 0..4 {
        while sim.recv(0, link).is_some() {
            received += 1;
        }
    }
    assert_eq!(received, sent, "every packet survives the retry path");
    assert_eq!(sim.mem_read_u64(0, 0x40).unwrap(), sent, "all increments applied");
    let total_retries: u64 = (0..4)
        .map(|l| sim.link_stats(0, l).unwrap().retries)
        .sum();
    assert!(total_retries > 0, "errors were actually injected");
}

#[test]
fn retry_trace_events_recorded() {
    use hmcsim::sim::{TraceBuffer, TraceLevel, Tracer};
    let mut cfg = DeviceConfig::gen2_4link_4gb();
    cfg.link_config = LinkConfig { error_period: Some(1), ..Default::default() };
    let mut sim = HmcSim::new(cfg).unwrap();
    let buf = TraceBuffer::new();
    sim.set_tracer(Tracer::to_buffer(TraceLevel::STALL, buf.clone()));
    let tag = sim.send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![]).unwrap().unwrap();
    sim.run_until_response(0, 0, tag, 1000).unwrap();
    assert_eq!(buf.grep("link error injected").len(), 1);
}

#[test]
fn retries_replay_with_their_original_seq() {
    // An errored transmission waits in the retry buffer carrying the
    // SEQ it was first assigned; the replay must reuse it rather than
    // burn a fresh one, or the receiver-side sequence would gap.
    let mut cfg = DeviceConfig::gen2_4link_4gb();
    cfg.link_config = LinkConfig {
        error_period: Some(3),
        retry_latency: 8,
        ..Default::default()
    };
    let mut sim = HmcSim::new(cfg).unwrap();
    let mut tags = Vec::new();
    for i in 0..3u64 {
        tags.push(
            sim.send_simple(0, 0, HmcRqst::Rd16, i * 0x100, vec![])
                .unwrap()
                .unwrap(),
        );
    }
    // SEQ numbering starts at 1; the third packet (SEQ 3) hit the
    // scheduled wire error and is parked for retry.
    let snap = sim.snapshot();
    let retries = snap.retry_seqs(0);
    assert_eq!(retries.len(), 1, "one packet parked for retry");
    assert_eq!(retries[0].1, 3, "the retry keeps its original SEQ");

    for (i, tag) in tags.into_iter().enumerate() {
        let rsp = sim.run_until_response(0, 0, tag, 1000).unwrap();
        assert_eq!(rsp.rsp.head.cmd, HmcResponse::RdRs, "packet {i} completes");
    }
    assert_eq!(sim.link_stats(0, 0).unwrap().retries, 1);
    // The next wire packet continues the sequence with no gap: SEQ 4
    // (not 5, which a fresh-SEQ replay would have produced).
    sim.send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![]).unwrap().unwrap();
    let seqs = sim.snapshot().request_seqs(0);
    assert_eq!(seqs.len(), 1);
    assert_eq!(seqs[0].1, 4, "sequence continues without a burned SEQ");
}
