//! Spec-revision gating: a Gen1 part (HMC-Sim 1.0's model) rejects
//! Gen2-only traffic with error responses while serving the 1.0
//! command set normally.

use hmcsim::prelude::*;
use hmcsim::sim::SpecRevision;

fn gen1_sim() -> HmcSim {
    HmcSim::new(DeviceConfig::gen1_4link_2gb()).unwrap()
}

#[test]
fn revision_support_matrix() {
    let gen1 = SpecRevision::Gen1;
    // 1.0 commands.
    for cmd in [
        HmcRqst::Rd16,
        HmcRqst::Rd128,
        HmcRqst::Wr64,
        HmcRqst::PWr128,
        HmcRqst::MdRd,
        HmcRqst::MdWr,
        HmcRqst::Null,
        HmcRqst::Pret,
    ] {
        assert!(gen1.supports(cmd), "{cmd} is a 1.0 command");
    }
    // Gen2-only commands.
    for cmd in [
        HmcRqst::Rd256,
        HmcRqst::Wr256,
        HmcRqst::PWr256,
        HmcRqst::Inc8,
        HmcRqst::CasEq8,
        HmcRqst::Xor16,
        HmcRqst::Swap16,
        HmcRqst::Cmc(125),
    ] {
        assert!(!gen1.supports(cmd), "{cmd} is Gen2-only");
        assert!(SpecRevision::Gen2.supports(cmd), "{cmd} works on Gen2");
    }
}

#[test]
fn gen1_device_serves_the_one_dot_zero_set() {
    let mut sim = gen1_sim();
    let tag = sim
        .send_simple(0, 0, HmcRqst::Wr64, 0x1000, (0..8).collect())
        .unwrap()
        .unwrap();
    let rsp = sim.run_until_response(0, 0, tag, 100).unwrap();
    assert_eq!(rsp.rsp.head.cmd, HmcResponse::WrRs);
    let tag = sim.send_simple(0, 0, HmcRqst::Rd64, 0x1000, vec![]).unwrap().unwrap();
    let rsp = sim.run_until_response(0, 0, tag, 100).unwrap();
    assert_eq!(rsp.rsp.payload[0], 0);
    assert_eq!(rsp.rsp.payload[1], 1);
}

#[test]
fn gen1_device_errors_on_atomics() {
    let mut sim = gen1_sim();
    let tag = sim.send_simple(0, 0, HmcRqst::Inc8, 0x40, vec![]).unwrap().unwrap();
    let rsp = sim.run_until_response(0, 0, tag, 100).unwrap();
    assert_eq!(rsp.rsp.head.cmd, HmcResponse::Error);
    assert_eq!(rsp.rsp.tail.errstat, 0x20);
    assert_eq!(sim.mem_read_u64(0, 0x40).unwrap(), 0, "no side effect");
    assert_eq!(sim.stats(0).unwrap().error_responses, 1);
}

#[test]
fn gen1_device_errors_on_256_byte_transfers() {
    let mut sim = gen1_sim();
    let tag = sim.send_simple(0, 0, HmcRqst::Rd256, 0x0, vec![]).unwrap().unwrap();
    let rsp = sim.run_until_response(0, 0, tag, 100).unwrap();
    assert_eq!(rsp.rsp.head.cmd, HmcResponse::Error);
}

#[test]
fn gen1_device_errors_on_cmc_even_when_loaded() {
    // The registry is per-context software state; the revision gate
    // sits in front of it, exactly as a 1.0 part has no CMC logic.
    hmcsim::cmc::ops::register_builtin_libraries();
    let mut sim = gen1_sim();
    sim.load_cmc_library(0, hmcsim::cmc::ops::MUTEX_LIBRARY).unwrap();
    let tag = sim.send_cmc(0, 0, 125, 0x4000, vec![1, 0]).unwrap().unwrap();
    let rsp = sim.run_until_response(0, 0, tag, 100).unwrap();
    assert_eq!(rsp.rsp.head.cmd, HmcResponse::Error);
    assert_eq!(sim.mem_read_u64(0, 0x4000).unwrap(), 0, "lock untouched");
}

#[test]
fn gen2_default_accepts_everything() {
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    let tag = sim.send_simple(0, 0, HmcRqst::Rd256, 0x0, vec![]).unwrap().unwrap();
    let rsp = sim.run_until_response(0, 0, tag, 100).unwrap();
    assert_eq!(rsp.rsp.head.cmd, HmcResponse::RdRs);
    assert_eq!(rsp.rsp.flits(), 17);
}
