//! Multi-device chaining: CUB-routed requests across a chain of
//! cubes (the topology support carried forward from HMC-Sim 1.0).

use hmcsim::prelude::*;
use hmcsim::sim::SimConfig;

fn chain(n: usize) -> HmcSim {
    HmcSim::with_config(SimConfig::chain(DeviceConfig::gen2_4link_4gb(), n)).expect("valid chain")
}

fn read_via_chain(sim: &mut HmcSim, cub: u8, addr: u64) -> hmcsim::sim::TrackedResponse {
    let req = Request::new(
        HmcRqst::Rd16,
        Tag::new(cub as u32).unwrap(),
        addr,
        Cub::new(cub).unwrap(),
        vec![],
    )
    .unwrap();
    sim.send(0, 0, req).unwrap();
    for _ in 0..500 {
        sim.clock();
        if let Some(rsp) = sim.recv(0, 0) {
            return rsp;
        }
    }
    panic!("no response from cube {cub}");
}

#[test]
fn every_cube_in_an_eight_chain_is_reachable() {
    let mut sim = chain(8);
    for cub in 0..8u8 {
        sim.mem_write_u64(cub as usize, 0x40, 0x100 + cub as u64).unwrap();
        let rsp = read_via_chain(&mut sim, cub, 0x40);
        assert_eq!(rsp.rsp.payload[0], 0x100 + cub as u64, "cube {cub}");
        assert_eq!(rsp.rsp.head.cub.value(), cub, "response carries origin cube");
    }
}

#[test]
fn latency_grows_with_hop_count() {
    let mut sim = chain(4);
    for cub in 0..4usize {
        sim.mem_write_u64(cub, 0x40, 1).unwrap();
    }
    let latencies: Vec<u64> = (0..4u8)
        .map(|cub| read_via_chain(&mut sim, cub, 0x40).latency)
        .collect();
    assert_eq!(latencies[0], 3, "local access is the 3-cycle round trip");
    for hop in 1..4 {
        assert!(
            latencies[hop] > latencies[hop - 1],
            "cube {hop} slower than cube {}: {latencies:?}",
            hop - 1
        );
    }
}

#[test]
fn writes_land_on_the_target_cube_only() {
    let mut sim = chain(3);
    let req = Request::new(
        HmcRqst::Wr16,
        Tag::new(5).unwrap(),
        0x80,
        Cub::new(2).unwrap(),
        vec![0xAA, 0xBB],
    )
    .unwrap();
    sim.send(0, 0, req).unwrap();
    for _ in 0..200 {
        sim.clock();
        if sim.recv(0, 0).is_some() {
            break;
        }
    }
    assert_eq!(sim.mem_read_u64(2, 0x80).unwrap(), 0xAA, "target cube written");
    assert_eq!(sim.mem_read_u64(0, 0x80).unwrap(), 0, "intermediate cubes untouched");
    assert_eq!(sim.mem_read_u64(1, 0x80).unwrap(), 0);
    assert_eq!(sim.stats(0).unwrap().forwarded, 1);
    assert_eq!(sim.stats(1).unwrap().forwarded, 1);
}

#[test]
fn out_of_topology_cube_rejected_at_send() {
    let mut sim = chain(2);
    let req = Request::new(
        HmcRqst::Rd16,
        Tag::new(0).unwrap(),
        0,
        Cub::new(5).unwrap(),
        vec![],
    )
    .unwrap();
    assert!(matches!(sim.send(0, 0, req), Err(HmcError::InvalidCube(5))));
}

#[test]
fn host_only_topology_rejects_foreign_cubs() {
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    assert_eq!(sim.device_count(), 1);
    let req = Request::new(
        HmcRqst::Rd16,
        Tag::new(0).unwrap(),
        0,
        Cub::new(1).unwrap(),
        vec![],
    )
    .unwrap();
    assert!(sim.send(0, 0, req).is_err());
}

#[test]
fn cmc_ops_execute_on_remote_cubes() {
    hmcsim::cmc::ops::register_builtin_libraries();
    let mut sim = chain(2);
    // Load the mutex suite on the REMOTE cube only.
    sim.load_cmc_library(1, hmcsim::cmc::ops::MUTEX_LIBRARY).unwrap();
    let req = Request::new_cmc(
        125,
        2,
        Tag::new(1).unwrap(),
        0x4000,
        Cub::new(1).unwrap(),
        vec![42, 0],
    )
    .unwrap();
    sim.send(0, 0, req).unwrap();
    let mut got = None;
    for _ in 0..300 {
        sim.clock();
        if let Some(rsp) = sim.recv(0, 0) {
            got = Some(rsp);
            break;
        }
    }
    let rsp = got.expect("remote CMC response");
    assert_eq!(rsp.rsp.payload[0], 1, "lock acquired on cube 1");
    assert_eq!(sim.mem_read_u64(1, 0x4000).unwrap(), 1);
    assert_eq!(sim.mem_read_u64(1, 0x4008).unwrap(), 42);
    assert_eq!(sim.stats(1).unwrap().cmc_ops, 1);
    assert_eq!(sim.stats(0).unwrap().cmc_ops, 0);
}
