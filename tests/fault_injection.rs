//! Chaos tests for the fault-injection and resilience subsystem.
//!
//! Exercises the full stack end to end: seeded `FaultPlan`s driving
//! vault ERRSTAT errors, response poisoning, random transmission
//! errors and scheduled link outages, against host-side recovery in
//! the thread driver (timeout, bounded retry with backoff, link
//! failover, tag reclamation). The properties asserted are the ones
//! from the issue: liveness (all threads finish), safety (the mutex
//! is never double-owned), zero perturbation (`FaultPlan::none()` and
//! an idle seeded plan reproduce the pinned fault-free numbers), and
//! determinism (the same seed reproduces identical results).

use hmcsim::cmc::ops;
use hmcsim::prelude::*;
use hmcsim::sim::{FaultPlan, LinkErrorMode};
use hmcsim::workloads::kernels::triad::{TriadConfig, TriadKernel};
use hmcsim::workloads::{
    MutexKernel, MutexKernelConfig, MutexMechanism, ResilienceConfig, SpinPolicy, ThreadDriver,
};

fn sim_with_mutex(config: DeviceConfig) -> HmcSim {
    ops::register_builtin_libraries();
    let mut sim = HmcSim::new(config).unwrap();
    sim.load_cmc_library(0, ops::MUTEX_LIBRARY).unwrap();
    sim
}

/// An aggressive but survivable plan: ~4% vault errors, ~2% poisoned
/// reads, ~0.5% wire corruption, and a mid-run outage of link 1.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_vault_errors(40_000)
        .with_poison(20_000)
        .with_link_errors(LinkErrorMode::Random { per_million: 5_000 })
        .with_link_event(200, 1, false)
        .with_link_event(600, 1, true)
}

fn chaos_mutex_run(seed: u64) -> (hmcsim::workloads::RunMetrics, u32, u64, HmcSim) {
    let mut config = DeviceConfig::gen2_4link_4gb();
    config.fault = chaos_plan(seed);
    let mut sim = sim_with_mutex(config);
    let kernel = MutexKernel::new(MutexKernelConfig {
        threads: 16,
        spin: SpinPolicy::until_owned(),
        mechanism: MutexMechanism::Cmc,
        ..Default::default()
    });
    let driver = ThreadDriver {
        dev: 0,
        max_cycles: 500_000,
        resilience: Some(ResilienceConfig {
            request_timeout: 3_000,
            max_retries: 8,
            backoff_base: 8,
        }),
    };
    let result = kernel.run_with_driver(&mut sim, &driver).unwrap();
    (result.metrics, result.acquisitions, result.final_lock_word, sim)
}

#[test]
fn mutex_chaos_liveness_and_safety() {
    let (metrics, acquisitions, final_lock_word, sim) = chaos_mutex_run(0xC0FFEE);

    // Liveness: every thread finished inside the cycle budget.
    assert_eq!(metrics.unfinished, 0, "threads wedged under faults");

    // Safety: with the until-owned spin each thread must enter the
    // critical region exactly once, and the lock must end released.
    // Host retries cannot double-own: a re-executed hmc_lock finds
    // the word set, and hmc_trylock reports the true owner id.
    assert_eq!(acquisitions, 16, "each thread acquires exactly once");
    assert_eq!(final_lock_word, 0, "lock released at the end");

    // The chaos must have been real — faults injected and recovered.
    let stats = sim.stats(0).unwrap();
    assert!(stats.vault_faults > 0, "no vault faults injected");
    let totals = metrics.total_faults();
    assert!(
        totals.error_responses + totals.poisoned + totals.timeouts > 0,
        "driver never intervened: {totals:?}"
    );
    assert_eq!(totals.give_ups, 0, "no request should be surrendered");
}

#[test]
fn mutex_chaos_same_seed_is_deterministic() {
    let (m1, a1, w1, sim1) = chaos_mutex_run(42);
    let (m2, a2, w2, sim2) = chaos_mutex_run(42);
    // RunMetrics includes per-thread cycle counts and fault stats;
    // equality means the whole recovery schedule replayed identically.
    assert_eq!(m1, m2);
    assert_eq!((a1, w1), (a2, w2));
    let (s1, s2) = (sim1.stats(0).unwrap(), sim2.stats(0).unwrap());
    assert_eq!(s1.vault_faults, s2.vault_faults);
    assert_eq!(s1.poisoned_responses, s2.poisoned_responses);
    assert_eq!(s1.failover_responses, s2.failover_responses);
    assert!(s1.vault_faults > 0, "seed 42 must actually inject faults");
}

#[test]
fn triad_chaos_recovers_with_timeouts_and_failover() {
    // Link 0 goes down early (sends fail over to surviving links),
    // vault errors and poisoned reads force retries, and the timeout
    // is deliberately tighter than the congested round trip so some
    // requests are abandoned mid-flight — their late responses are
    // reclaimed as zombies. Triad requests are idempotent, so the
    // aggressive timeout is safe.
    let mut config = DeviceConfig::gen2_4link_4gb();
    config.fault = FaultPlan::seeded(7)
        .with_vault_errors(20_000)
        .with_poison(10_000)
        .with_link_event(20, 0, false)
        .with_link_event(2_000, 0, true);
    let mut sim = HmcSim::new(config).unwrap();
    let kernel = TriadKernel::new(TriadConfig {
        elements: 1024,
        resilience: Some(ResilienceConfig {
            request_timeout: 20,
            max_retries: 8,
            backoff_base: 4,
        }),
        ..Default::default()
    });
    let result = kernel.run(&mut sim).unwrap();
    assert_eq!(result.errors, 0, "every element verified despite faults");
    assert!(
        result.fault_retries > 0,
        "faulty responses should have been retried"
    );
    assert!(result.timeouts > 0, "the tight timeout should abandon requests");
    let stats = sim.stats(0).unwrap();
    assert!(
        stats.abandoned_responses > 0,
        "zombie responses should have been reclaimed"
    );
    assert!(stats.failover_responses > 0, "link outage should reroute responses");
}

#[test]
fn none_plan_reproduces_pinned_fault_free_metrics() {
    // The paper's "No Simulation Perturbation" requirement (§IV-A)
    // extended to the fault subsystem: an explicit FaultPlan::none()
    // AND a seeded-but-idle plan must reproduce the pinned Table VI
    // numbers cycle for cycle (seeding alone must not draw from the
    // PRNG or touch the pipeline).
    let run = |fault: FaultPlan| {
        let mut config = DeviceConfig::gen2_4link_4gb();
        config.fault = fault;
        let mut sim = sim_with_mutex(config);
        MutexKernel::new(MutexKernelConfig { threads: 16, ..Default::default() })
            .run(&mut sim)
            .unwrap()
            .metrics
    };
    for plan in [FaultPlan::none(), FaultPlan::seeded(0xDEAD_BEEF)] {
        let m = run(plan);
        assert_eq!(m.min_cycle(), 19);
        assert_eq!(m.max_cycle(), 49);
        assert!((m.avg_cycle() - 40.56).abs() < 0.3, "avg {:.2}", m.avg_cycle());
        assert!(m.total_faults().is_clean());
    }
    assert_eq!(
        run(FaultPlan::none()).per_thread_cycles,
        run(FaultPlan::seeded(123)).per_thread_cycles,
        "idle seeded plan perturbed the schedule"
    );
}

#[test]
fn single_flipped_bit_is_caught_by_ingress_crc() {
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    let req = Request::new(
        HmcRqst::Rd16,
        Tag::new(5).unwrap(),
        0x1000,
        Cub::new(0).unwrap(),
        vec![],
    )
    .unwrap();

    // Pristine FLITs are accepted.
    let flits = req.pack();
    sim.send_flits(0, 0, &flits).unwrap();

    // A single flipped wire bit must be rejected with a CRC mismatch
    // and counted in the link statistics.
    let mut corrupted = req.pack();
    corrupted[0].words[0] ^= 1 << 17;
    let err = sim.send_flits(0, 1, &corrupted).unwrap_err();
    assert!(
        matches!(err, HmcError::CrcMismatch { .. }),
        "expected CRC mismatch, got {err}"
    );
    assert_eq!(sim.link_stats(0, 1).unwrap().crc_errors, 1);
    assert_eq!(sim.link_stats(0, 0).unwrap().crc_errors, 0);
}

#[test]
fn scheduled_link_outage_rejects_sends_then_recovers() {
    let mut config = DeviceConfig::gen2_4link_4gb();
    config.fault = FaultPlan::seeded(1)
        .with_link_event(1, 0, false)
        .with_link_event(5, 0, true);
    let mut sim = HmcSim::new(config).unwrap();
    assert!(sim.link_is_up(0, 0));
    // The schedule is applied at the top of each clock for the cycle
    // being processed, so the cycle-1 event takes effect during the
    // second clock call.
    sim.clock();
    sim.clock();
    assert!(!sim.link_is_up(0, 0), "link 0 scheduled down at cycle 1");
    let err = sim
        .send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![])
        .unwrap_err();
    assert!(matches!(err, HmcError::LinkDown(0)), "got {err}");
    // Other links keep working while link 0 is out.
    let tag = sim.send_simple(0, 1, HmcRqst::Rd16, 0x40, vec![]).unwrap().unwrap();
    let rsp = sim.run_until_response(0, 1, tag, 100).unwrap();
    assert_eq!(rsp.rsp.head.cmd, HmcResponse::RdRs);
    while sim.cycle() < 6 {
        sim.clock();
    }
    assert!(sim.link_is_up(0, 0), "link 0 scheduled back up at cycle 5");
    let tag = sim.send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![]).unwrap().unwrap();
    sim.run_until_response(0, 0, tag, 100).unwrap();
}
