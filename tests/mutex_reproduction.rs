//! Reproduction smoke tests for the paper's evaluation (§V-C):
//! Table VI and the qualitative claims behind Figures 5–7, at reduced
//! thread counts so they run quickly in CI.

use hmcsim::cmc::ops;
use hmcsim::prelude::*;
use hmcsim::workloads::{MutexKernel, MutexKernelConfig, SpinPolicy};

fn sim_with_mutex(config: DeviceConfig) -> HmcSim {
    ops::register_builtin_libraries();
    let mut sim = HmcSim::new(config).unwrap();
    sim.load_cmc_library(0, ops::MUTEX_LIBRARY).unwrap();
    sim
}

fn run(config: DeviceConfig, threads: usize, spin: SpinPolicy) -> hmcsim::workloads::RunMetrics {
    let mut sim = sim_with_mutex(config);
    MutexKernel::new(MutexKernelConfig { threads, spin, ..Default::default() })
        .run(&mut sim)
        .unwrap()
        .metrics
}

#[test]
fn table_vi_min_cycle_is_six_on_both_devices() {
    for config in [DeviceConfig::gen2_4link_4gb(), DeviceConfig::gen2_8link_8gb()] {
        let metrics = run(config.clone(), 2, SpinPolicy::PaperBounded);
        assert_eq!(metrics.min_cycle(), 6, "{}", config.label());
    }
}

#[test]
fn devices_identical_at_low_thread_counts() {
    // Paper: "minimum, maximum and average cycle counts are actually
    // identical between both configurations for thread counts from
    // two to fifty" — spot-check a few low counts.
    for threads in [2, 8, 16, 24] {
        let four = run(DeviceConfig::gen2_4link_4gb(), threads, SpinPolicy::PaperBounded);
        let eight = run(DeviceConfig::gen2_8link_8gb(), threads, SpinPolicy::PaperBounded);
        assert_eq!(four.min_cycle(), eight.min_cycle(), "{threads} threads min");
        assert_eq!(four.max_cycle(), eight.max_cycle(), "{threads} threads max");
        assert_eq!(four.avg_cycle(), eight.avg_cycle(), "{threads} threads avg");
    }
}

#[test]
fn max_and_avg_grow_with_thread_count() {
    let points: Vec<_> = [4usize, 16, 64]
        .iter()
        .map(|&t| run(DeviceConfig::gen2_4link_4gb(), t, SpinPolicy::PaperBounded))
        .collect();
    assert!(points[0].max_cycle() < points[1].max_cycle());
    assert!(points[1].max_cycle() < points[2].max_cycle());
    assert!(points[0].avg_cycle() < points[1].avg_cycle());
    assert!(points[1].avg_cycle() < points[2].avg_cycle());
}

#[test]
fn eight_link_wins_on_average_at_high_thread_counts() {
    // Paper: the 8-link device's extra queueing capacity gives it a
    // small (≈2%) advantage in worst-case average cycles.
    let four = run(DeviceConfig::gen2_4link_4gb(), 100, SpinPolicy::PaperBounded);
    let eight = run(DeviceConfig::gen2_8link_8gb(), 100, SpinPolicy::PaperBounded);
    assert!(
        eight.avg_cycle() < four.avg_cycle(),
        "8-link avg {:.2} must beat 4-link avg {:.2}",
        eight.avg_cycle(),
        four.avg_cycle()
    );
    let gain = 100.0 * (four.avg_cycle() - eight.avg_cycle()) / four.avg_cycle();
    assert!(gain < 10.0, "the advantage is small (paper: 2.2%), got {gain:.1}%");
}

#[test]
fn honest_spin_mode_serializes_the_critical_section() {
    // UntilOwned gives every thread the lock exactly once, so the
    // makespan is bounded below by #threads sequential handoffs.
    let threads = 12;
    let mut sim = sim_with_mutex(DeviceConfig::gen2_4link_4gb());
    let result = MutexKernel::new(MutexKernelConfig {
        threads,
        spin: SpinPolicy::until_owned(),
        ..Default::default()
    })
    .run(&mut sim)
    .unwrap();
    assert_eq!(result.acquisitions, threads as u32);
    assert!(
        result.metrics.max_cycle() >= 6 * threads as u64,
        "strict handoffs cannot beat two round trips each"
    );
    assert_eq!(result.final_lock_word, 0);
}

#[test]
fn mutual_exclusion_holds_under_honest_spin() {
    // The lock word and owner field are consistent after every run,
    // and the device-side op count matches the protocol: each thread
    // issued at least lock + unlock.
    let mut sim = sim_with_mutex(DeviceConfig::gen2_4link_4gb());
    let threads = 20;
    let result = MutexKernel::new(MutexKernelConfig {
        threads,
        spin: SpinPolicy::until_owned(),
        ..Default::default()
    })
    .run(&mut sim)
    .unwrap();
    assert_eq!(result.metrics.unfinished, 0);
    let stats = sim.stats(0).unwrap();
    assert!(stats.cmc_ops >= 2 * threads as u64);
    assert_eq!(stats.error_responses, 0, "no malformed CMC traffic");
}

#[test]
fn hot_spot_concentrates_on_one_vault() {
    // All threads target one lock address: the paper's deliberate
    // memory hot spot (§V-B).
    let mut sim = sim_with_mutex(DeviceConfig::gen2_4link_4gb());
    MutexKernel::new(MutexKernelConfig { threads: 64, ..Default::default() })
        .run(&mut sim)
        .unwrap();
    assert!(
        sim.vault_queue_high_water(0).unwrap() >= 16,
        "the lock vault must queue deeply"
    );
}
