//! Differential determinism harness for the parallel tick engine.
//!
//! The contract under test: for any workload, any device
//! configuration and any thread count, a simulation run in
//! `ExecMode::Parallel` produces **bit-identical** state to the
//! sequential reference path — checked cycle by cycle through the
//! full device-state fingerprint (queues, banks, memory digest,
//! stats, power, RNG state), not just at the end of the run.
//!
//! Both sims are driven in lockstep: the same injection attempt on
//! the same cycle, the same host-side drains. Because the fingerprint
//! is compared after every cycle, the first divergent cycle is
//! reported directly.

use hmcsim::prelude::*;
use hmcsim::sim::{FaultPlan, SimConfig};
use proptest::prelude::*;

/// One host action per simulated cycle.
#[derive(Debug, Clone)]
enum Op {
    Read { slot: u16 },
    Write { slot: u16, value: u64 },
    PostedWrite { slot: u16, value: u64 },
    Atomic { slot: u16, value: u64 },
    PostedAtomic { slot: u16 },
    Idle,
}

fn arb_op() -> impl Strategy<Value = Op> {
    let slot = 0u16..2048;
    prop_oneof![
        slot.clone().prop_map(|slot| Op::Read { slot }),
        (slot.clone(), any::<u64>()).prop_map(|(slot, value)| Op::Write { slot, value }),
        (slot.clone(), any::<u64>()).prop_map(|(slot, value)| Op::PostedWrite { slot, value }),
        (slot.clone(), any::<u64>()).prop_map(|(slot, value)| Op::Atomic { slot, value }),
        slot.prop_map(|slot| Op::PostedAtomic { slot }),
        Just(Op::Idle),
    ]
}

fn slot_addr(slot: u16) -> u64 {
    (slot as u64) * 16
}

/// Injects one op (ignoring deterministic back-pressure failures),
/// clocks one cycle, drains every host link, and records the
/// post-cycle fingerprint.
fn drive(sim: &mut HmcSim, ops: &[Op], drain_cycles: u64) -> Vec<u64> {
    let links = sim.device_config(0).unwrap().links;
    let mut fingerprints = Vec::with_capacity(ops.len() + drain_cycles as usize);
    let mut step = |sim: &mut HmcSim, op: Option<(&Op, usize)>| {
        if let Some((op, link)) = op {
            let sent = match *op {
                Op::Read { slot } => {
                    sim.send_simple(0, link, HmcRqst::Rd16, slot_addr(slot), vec![])
                }
                Op::Write { slot, value } => {
                    sim.send_simple(0, link, HmcRqst::Wr16, slot_addr(slot), vec![value, !value])
                }
                Op::PostedWrite { slot, value } => {
                    sim.send_simple(0, link, HmcRqst::PWr16, slot_addr(slot), vec![value, value])
                }
                Op::Atomic { slot, value } => {
                    sim.send_simple(0, link, HmcRqst::Xor16, slot_addr(slot), vec![value, 0])
                }
                Op::PostedAtomic { slot } => {
                    sim.send_simple(0, link, HmcRqst::P2Add8, slot_addr(slot), vec![1, 1])
                }
                Op::Idle => Ok(None),
            };
            // Back-pressure (stalls, exhausted tags) is part of the
            // deterministic behaviour under test; only real protocol
            // errors would indicate a broken driver.
            match sent {
                Ok(_) | Err(HmcError::Stall) | Err(HmcError::TagsExhausted) => {}
                Err(e) => panic!("unexpected send error: {e}"),
            }
        }
        sim.clock();
        fingerprints.push(sim.state_fingerprint());
        for l in 0..links {
            while sim.recv(0, l).is_some() {}
        }
    };
    for (i, op) in ops.iter().enumerate() {
        step(sim, Some((op, i % links)));
    }
    for _ in 0..drain_cycles {
        step(sim, None);
    }
    fingerprints
}

/// Builds a sim pinned to an explicit execution mode (immune to an
/// ambient `HMCSIM_THREADS`, which the CI matrix sets).
fn sim_with_mode(config: DeviceConfig, mode: ExecMode) -> HmcSim {
    let mut sim = HmcSim::new(config).unwrap();
    sim.set_exec_mode(mode);
    sim
}

/// Like [`drive`], but with a bulk idle gap after every op — the
/// shape that exercises the event-horizon engine's multi-cycle skips
/// (per-cycle `clock()` only ever compresses one cycle at a time).
/// Returns the fingerprint trace plus the final device stats, so
/// callers can also assert the latency histograms are untouched.
fn drive_bursty(
    sim: &mut HmcSim,
    ops: &[Op],
    gap: u64,
    drain_cycles: u64,
) -> (Vec<u64>, hmcsim::sim::DeviceStats) {
    let links = sim.device_config(0).unwrap().links;
    let mut fingerprints = Vec::with_capacity(ops.len() + 1);
    for (i, op) in ops.iter().enumerate() {
        let link = i % links;
        let sent = match *op {
            Op::Read { slot } => {
                sim.send_simple(0, link, HmcRqst::Rd16, slot_addr(slot), vec![])
            }
            Op::Write { slot, value } => {
                sim.send_simple(0, link, HmcRqst::Wr16, slot_addr(slot), vec![value, !value])
            }
            Op::PostedWrite { slot, value } => {
                sim.send_simple(0, link, HmcRqst::PWr16, slot_addr(slot), vec![value, value])
            }
            Op::Atomic { slot, value } => {
                sim.send_simple(0, link, HmcRqst::Xor16, slot_addr(slot), vec![value, 0])
            }
            Op::PostedAtomic { slot } => {
                sim.send_simple(0, link, HmcRqst::P2Add8, slot_addr(slot), vec![1, 1])
            }
            Op::Idle => Ok(None),
        };
        // Back-pressure and scheduled link outages are deterministic
        // and identical across the compared runs; only other protocol
        // errors would indicate a broken harness.
        match sent {
            Ok(_)
            | Err(HmcError::Stall)
            | Err(HmcError::TagsExhausted)
            | Err(HmcError::LinkDown(_)) => {}
            Err(e) => panic!("unexpected send error: {e}"),
        }
        sim.clock();
        sim.clock_n(gap);
        fingerprints.push(sim.state_fingerprint());
        for l in 0..links {
            while sim.recv(0, l).is_some() {}
        }
    }
    sim.clock_n(drain_cycles);
    fingerprints.push(sim.state_fingerprint());
    for l in 0..links {
        while sim.recv(0, l).is_some() {}
    }
    (fingerprints, sim.stats(0).unwrap().clone())
}

fn assert_lockstep_equal(config_name: &str, threads: usize, reference: &[u64], parallel: &[u64]) {
    assert_eq!(reference.len(), parallel.len());
    for (cycle, (r, p)) in reference.iter().zip(parallel).enumerate() {
        assert_eq!(
            r, p,
            "fingerprint diverged: config={config_name} threads={threads} cycle={cycle}"
        );
    }
}

fn configs() -> [(&'static str, DeviceConfig); 2] {
    [
        ("gen2_4link_4gb", DeviceConfig::gen2_4link_4gb()),
        ("gen2_8link_8gb", DeviceConfig::gen2_8link_8gb()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The core differential property: random traffic, both reference
    /// configurations, thread counts 1/2/4/8 — per-cycle fingerprint
    /// equality against the sequential reference.
    #[test]
    fn parallel_is_bit_identical_to_sequential(
        ops in prop::collection::vec(arb_op(), 1..120),
    ) {
        for (name, config) in configs() {
            let reference = drive(
                &mut sim_with_mode(config.clone(), ExecMode::Sequential),
                &ops,
                60,
            );
            for threads in [1usize, 2, 4, 8] {
                let parallel = drive(
                    &mut sim_with_mode(config.clone(), ExecMode::Parallel { threads }),
                    &ops,
                    60,
                );
                assert_lockstep_equal(name, threads, &reference, &parallel);
            }
        }
    }

    /// With probabilistic fault injection armed, the planner refuses
    /// every cycle and parallel mode degenerates to the serial
    /// reference path — which must still be bit-identical, RNG stream
    /// included.
    #[test]
    fn parallel_with_fault_injection_is_bit_identical(
        ops in prop::collection::vec(arb_op(), 1..60),
        seed in any::<u64>(),
    ) {
        let mut config = DeviceConfig::gen2_4link_4gb();
        config.fault = FaultPlan::seeded(seed)
            .with_vault_errors(100_000)
            .with_poison(50_000);
        let reference = drive(
            &mut sim_with_mode(config.clone(), ExecMode::Sequential),
            &ops,
            60,
        );
        for threads in [2usize, 8] {
            let parallel = drive(
                &mut sim_with_mode(config.clone(), ExecMode::Parallel { threads }),
                &ops,
                60,
            );
            assert_lockstep_equal("gen2_4link_4gb+faults", threads, &reference, &parallel);
        }
    }

    /// Random traffic with random idle gaps: a run with idle-cycle
    /// skipping is bit-identical to the full-execution reference on
    /// both engines — fingerprints and device stats alike.
    #[test]
    fn skip_mode_random_traffic_is_bit_identical(
        ops in prop::collection::vec(arb_op(), 1..40),
        gap in 0u64..1500,
    ) {
        let run = |mode: ExecMode, skip: SkipMode| {
            let mut sim = sim_with_mode(DeviceConfig::gen2_4link_4gb(), mode);
            sim.set_skip_mode(skip);
            drive_bursty(&mut sim, &ops, gap, 1_000)
        };
        let reference = run(ExecMode::Sequential, SkipMode::Off);
        let seq_on = run(ExecMode::Sequential, SkipMode::On);
        prop_assert_eq!(&reference, &seq_on);
        let par_on = run(ExecMode::Parallel { threads: 2 }, SkipMode::On);
        prop_assert_eq!(&reference, &par_on);
    }

    /// The sanitizer observes the same invariants whichever engine
    /// runs stage 3: zero violations, identical fingerprints.
    #[test]
    fn parallel_under_sanitizer_is_bit_identical_and_clean(
        ops in prop::collection::vec(arb_op(), 1..60),
    ) {
        let run = |mode: ExecMode| {
            let mut sim = sim_with_mode(DeviceConfig::gen2_4link_4gb(), mode);
            sim.enable_sanitizer(SanitizerConfig::report());
            let fingerprints = drive(&mut sim, &ops, 60);
            let violations = sim.sanitizer_report().map(|r| r.total_violations);
            (fingerprints, violations)
        };
        let (reference, ref_violations) = run(ExecMode::Sequential);
        prop_assert_eq!(ref_violations, Some(0));
        for threads in [2usize, 4] {
            let (parallel, par_violations) = run(ExecMode::Parallel { threads });
            assert_lockstep_equal("gen2_4link_4gb+sanitizer", threads, &reference, &parallel);
            prop_assert_eq!(par_violations, Some(0));
        }
    }
}

/// Non-random anchor: a saturating posted+acknowledged mix long
/// enough to trigger refresh windows, bank-busy stalls and
/// response-queue back-pressure, compared at every cycle across the
/// full thread matrix.
#[test]
fn saturating_mix_is_bit_identical_across_thread_matrix() {
    let ops: Vec<Op> = (0..600)
        .map(|i| match i % 5 {
            0 => Op::Write { slot: (i % 97) as u16, value: i as u64 },
            1 => Op::Read { slot: (i % 89) as u16 },
            2 => Op::PostedWrite { slot: (i % 83) as u16, value: !(i as u64) },
            3 => Op::Atomic { slot: (i % 79) as u16, value: i as u64 ^ 0xffff },
            _ => Op::PostedAtomic { slot: (i % 73) as u16 },
        })
        .collect();
    for (name, config) in configs() {
        let reference = drive(
            &mut sim_with_mode(config.clone(), ExecMode::Sequential),
            &ops,
            120,
        );
        for threads in [1usize, 2, 4, 8] {
            let parallel = drive(
                &mut sim_with_mode(config.clone(), ExecMode::Parallel { threads }),
                &ops,
                120,
            );
            assert_lockstep_equal(name, threads, &reference, &parallel);
        }
    }
}

/// The SkipMode axis of the differential matrix: for both reference
/// configurations and both engines (sequential and parallel), a run
/// with idle-cycle skipping enabled must be bit-identical to the
/// [`SkipMode::Off`] reference — fingerprint trace, device stats and
/// latency histograms — across idle-gap widths from "no gap" to
/// "thousands of compressible cycles".
#[test]
fn skip_mode_matrix_is_bit_identical() {
    let ops: Vec<Op> = (0..60)
        .map(|i| match i % 6 {
            0 => Op::Write { slot: (i % 67) as u16, value: i as u64 },
            1 => Op::Read { slot: (i % 59) as u16 },
            2 => Op::PostedWrite { slot: (i % 53) as u16, value: !(i as u64) },
            3 => Op::Atomic { slot: (i % 47) as u16, value: i as u64 ^ 0xaaaa },
            4 => Op::PostedAtomic { slot: (i % 43) as u16 },
            _ => Op::Idle,
        })
        .collect();
    for (name, config) in configs() {
        for gap in [0u64, 7, 4_096] {
            let run = |mode: ExecMode, skip: SkipMode| {
                let mut sim = sim_with_mode(config.clone(), mode);
                sim.set_skip_mode(skip);
                drive_bursty(&mut sim, &ops, gap, 2_000)
            };
            let (ref_fp, ref_stats) = run(ExecMode::Sequential, SkipMode::Off);
            for mode in [ExecMode::Sequential, ExecMode::Parallel { threads: 4 }] {
                let (fp, stats) = run(mode, SkipMode::On);
                assert_eq!(
                    ref_fp, fp,
                    "fingerprints diverged: config={name} gap={gap} mode={mode:?}"
                );
                assert_eq!(
                    ref_stats, stats,
                    "device stats diverged: config={name} gap={gap} mode={mode:?}"
                );
                assert_eq!(ref_stats.latency, stats.latency, "latency histogram diverged");
            }
        }
    }
}

/// Skipping must stop at *scheduled* fault-plan link transitions: a
/// link that goes down and comes back in the middle of a long idle
/// gap has to flip on exactly the configured cycles, and link-layer
/// retries stranded by the outage must replay identically.
#[test]
fn skip_mode_with_fault_schedule_is_bit_identical() {
    let ops: Vec<Op> = (0..40)
        .map(|i| match i % 3 {
            0 => Op::Write { slot: (i % 37) as u16, value: i as u64 },
            1 => Op::Read { slot: (i % 31) as u16 },
            _ => Op::Atomic { slot: (i % 29) as u16, value: i as u64 },
        })
        .collect();
    let mut config = DeviceConfig::gen2_4link_4gb();
    // Transitions land mid-gap (op cadence is 1 + 1000 cycles), so a
    // careless skip would sail straight past them.
    config.fault = FaultPlan::seeded(11)
        .with_vault_errors(80_000)
        .with_poison(40_000)
        .with_link_event(2_500, 1, false)
        .with_link_event(9_777, 1, true)
        .with_link_event(17_003, 2, false)
        .with_link_event(17_500, 2, true);
    let run = |mode: ExecMode, skip: SkipMode| {
        let mut sim = sim_with_mode(config.clone(), mode);
        sim.set_skip_mode(skip);
        drive_bursty(&mut sim, &ops, 1_000, 5_000)
    };
    let (ref_fp, ref_stats) = run(ExecMode::Sequential, SkipMode::Off);
    for mode in [ExecMode::Sequential, ExecMode::Parallel { threads: 2 }] {
        let (fp, stats) = run(mode, SkipMode::On);
        assert_eq!(ref_fp, fp, "fingerprints diverged under fault schedule: mode={mode:?}");
        assert_eq!(ref_stats, stats, "stats diverged under fault schedule: mode={mode:?}");
    }
}

/// Skipping under the full observer stack: sanitizer report mode
/// (watchdog + periodic checkpoints) and full telemetry must see the
/// exact same history whether the idle cycles were executed or
/// compressed — same fingerprints, same stats, a clean audit, and a
/// bit-identical telemetry export.
#[test]
fn skip_mode_under_sanitizer_and_telemetry_is_bit_identical_and_clean() {
    let ops: Vec<Op> = (0..48)
        .map(|i| match i % 4 {
            0 => Op::Write { slot: (i % 41) as u16, value: i as u64 },
            1 => Op::Read { slot: (i % 23) as u16 },
            2 => Op::PostedAtomic { slot: (i % 19) as u16 },
            _ => Op::Idle,
        })
        .collect();
    let run = |mode: ExecMode, skip: SkipMode| {
        let mut sim = sim_with_mode(DeviceConfig::gen2_4link_4gb(), mode);
        sim.set_skip_mode(skip);
        sim.enable_sanitizer(SanitizerConfig::report());
        sim.enable_telemetry(TelemetryConfig::full());
        let (fp, stats) = drive_bursty(&mut sim, &ops, 700, 3_000);
        let violations = sim.sanitizer_report().map(|r| r.total_violations);
        let telemetry = sim.telemetry_report().map(|r| r.to_json());
        (fp, stats, violations, telemetry)
    };
    let reference = run(ExecMode::Sequential, SkipMode::Off);
    assert_eq!(reference.2, Some(0), "reference run is invariant-clean");
    for mode in [ExecMode::Sequential, ExecMode::Parallel { threads: 4 }] {
        let skipped = run(mode, SkipMode::On);
        assert_eq!(reference.0, skipped.0, "fingerprints diverged under observers: {mode:?}");
        assert_eq!(reference.1, skipped.1, "stats diverged under observers: {mode:?}");
        assert_eq!(skipped.2, Some(0), "audit stays clean with skipping: {mode:?}");
        assert_eq!(reference.3, skipped.3, "telemetry export diverged: {mode:?}");
    }
}

/// Switching modes mid-run re-synchronizes on the very next cycle:
/// a run that flips sequential → parallel → sequential matches a
/// pure sequential run fingerprint for fingerprint.
#[test]
fn mode_switch_mid_run_is_seamless() {
    let ops: Vec<Op> = (0..240)
        .map(|i| match i % 3 {
            0 => Op::Write { slot: (i % 61) as u16, value: i as u64 },
            1 => Op::Read { slot: (i % 53) as u16 },
            _ => Op::Atomic { slot: (i % 47) as u16, value: i as u64 },
        })
        .collect();
    let reference = drive(
        &mut sim_with_mode(DeviceConfig::gen2_4link_4gb(), ExecMode::Sequential),
        &ops,
        60,
    );
    let mut sim = sim_with_mode(DeviceConfig::gen2_4link_4gb(), ExecMode::Sequential);
    let links = sim.device_config(0).unwrap().links;
    let mut fingerprints = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match i {
            80 => sim.set_exec_mode(ExecMode::Parallel { threads: 4 }),
            160 => sim.set_exec_mode(ExecMode::Sequential),
            _ => {}
        }
        let _ = match *op {
            Op::Read { slot } => sim.send_simple(0, i % links, HmcRqst::Rd16, slot_addr(slot), vec![]),
            Op::Write { slot, value } => {
                sim.send_simple(0, i % links, HmcRqst::Wr16, slot_addr(slot), vec![value, !value])
            }
            Op::Atomic { slot, value } => {
                sim.send_simple(0, i % links, HmcRqst::Xor16, slot_addr(slot), vec![value, 0])
            }
            _ => unreachable!(),
        };
        sim.clock();
        fingerprints.push(sim.state_fingerprint());
        for l in 0..links {
            while sim.recv(0, l).is_some() {}
        }
    }
    for _ in 0..60 {
        sim.clock();
        fingerprints.push(sim.state_fingerprint());
        for l in 0..links {
            while sim.recv(0, l).is_some() {}
        }
    }
    assert_lockstep_equal("mode-switch", 4, &reference, &fingerprints);
}

// ---------------------------------------------------------------------------
// Multi-cube fabric axis: the same lockstep contract, but across
// chain / ring / mesh topologies, with traffic entering at every cube
// and routed to remote cubes through the fabric.
// ---------------------------------------------------------------------------

/// The fabric topology matrix for the multi-cube anchors.
fn fabric_configs() -> [(&'static str, SimConfig); 3] {
    let d = DeviceConfig::gen2_4link_4gb;
    [
        ("chain4", SimConfig::chain(d(), 4)),
        ("ring5", SimConfig::ring(d(), 5)),
        ("mesh4x2", SimConfig::mesh(d(), 4, 2)),
    ]
}

fn fabric_sim(config: &SimConfig, mode: ExecMode, skip: SkipMode) -> HmcSim {
    let mut sim = HmcSim::with_config(config.clone()).unwrap();
    sim.set_exec_mode(mode);
    sim.set_skip_mode(skip);
    sim
}

/// Like [`drive`], but fabric-aware: op `i` enters at cube `i % n` and
/// targets cube `(i * 7 + 3) % n` via [`HmcSim::send_to_cube`], so the
/// stream mixes local traffic with multi-hop routes in every
/// direction. After each op an optional idle `gap` runs (to engage the
/// per-cube event horizons), then responses are drained from every
/// host-facing link of every cube.
fn drive_fabric(sim: &mut HmcSim, ops: &[Op], gap: u64, drain_cycles: u64) -> Vec<u64> {
    let n = sim.device_count();
    let links = sim.device_config(0).unwrap().links;
    let mut fingerprints = Vec::with_capacity(ops.len() + 1);
    let drain = |sim: &mut HmcSim| {
        for d in 0..n {
            for l in 0..links {
                while sim.recv(d, l).is_some() {}
            }
        }
    };
    for (i, op) in ops.iter().enumerate() {
        let entry = i % n;
        let link = i % links;
        let cub = Cub::new(((i * 7 + 3) % n) as u8).unwrap();
        let sent = match *op {
            Op::Read { slot } => {
                sim.send_to_cube(entry, link, cub, HmcRqst::Rd16, slot_addr(slot), vec![])
            }
            Op::Write { slot, value } => sim.send_to_cube(
                entry,
                link,
                cub,
                HmcRqst::Wr16,
                slot_addr(slot),
                vec![value, !value],
            ),
            Op::PostedWrite { slot, value } => sim.send_to_cube(
                entry,
                link,
                cub,
                HmcRqst::PWr16,
                slot_addr(slot),
                vec![value, value],
            ),
            Op::Atomic { slot, value } => sim.send_to_cube(
                entry,
                link,
                cub,
                HmcRqst::Xor16,
                slot_addr(slot),
                vec![value, 0],
            ),
            Op::PostedAtomic { slot } => {
                sim.send_to_cube(entry, link, cub, HmcRqst::P2Add8, slot_addr(slot), vec![1, 1])
            }
            Op::Idle => Ok(None),
        };
        // Back-pressure and scheduled link outages are deterministic
        // and identical across the compared runs.
        match sent {
            Ok(_)
            | Err(HmcError::Stall)
            | Err(HmcError::TagsExhausted)
            | Err(HmcError::LinkDown(_)) => {}
            Err(e) => panic!("unexpected fabric send error: {e}"),
        }
        sim.clock();
        if gap > 0 {
            sim.clock_n(gap);
        }
        fingerprints.push(sim.state_fingerprint());
        drain(sim);
    }
    sim.clock_n(drain_cycles);
    fingerprints.push(sim.state_fingerprint());
    drain(sim);
    fingerprints
}

/// The headline fabric anchor demanded by the engine contract: for
/// every topology in the matrix, state fingerprints are identical
/// across Sequential/Parallel{1,2,8} × Skip Off/On, checked after
/// every injection cycle.
#[test]
fn fabric_matrix_is_bit_identical_across_engines_and_skip() {
    let ops: Vec<Op> = (0..180)
        .map(|i| match i % 6 {
            0 => Op::Write { slot: (i % 97) as u16, value: i as u64 },
            1 => Op::Read { slot: (i % 89) as u16 },
            2 => Op::PostedWrite { slot: (i % 83) as u16, value: !(i as u64) },
            3 => Op::Atomic { slot: (i % 79) as u16, value: i as u64 ^ 0xbeef },
            4 => Op::PostedAtomic { slot: (i % 73) as u16 },
            _ => Op::Idle,
        })
        .collect();
    for (name, config) in fabric_configs() {
        let reference =
            drive_fabric(&mut fabric_sim(&config, ExecMode::Sequential, SkipMode::Off), &ops, 0, 300);
        for mode in [
            ExecMode::Sequential,
            ExecMode::Parallel { threads: 1 },
            ExecMode::Parallel { threads: 2 },
            ExecMode::Parallel { threads: 8 },
        ] {
            for skip in [SkipMode::Off, SkipMode::On] {
                let run = drive_fabric(&mut fabric_sim(&config, mode, skip), &ops, 0, 300);
                assert_eq!(reference.len(), run.len());
                for (cycle, (r, p)) in reference.iter().zip(&run).enumerate() {
                    assert_eq!(
                        r, p,
                        "fabric fingerprint diverged: topology={name} mode={mode:?} \
                         skip={skip:?} step={cycle}"
                    );
                }
            }
        }
    }
}

/// Idle cubes under long gaps: traffic enters only at cube 0 and
/// targets the far end of a chain, so the middle cubes spend most of
/// the run idle. With a scheduled link outage landing mid-gap, the
/// per-cube event horizons must still stop exactly at the fault-plan
/// transitions, on both engines.
#[test]
fn fabric_skip_with_idle_cubes_and_link_outage_is_bit_identical() {
    let ops: Vec<Op> = (0..24)
        .map(|i| match i % 3 {
            0 => Op::Write { slot: (i % 37) as u16, value: i as u64 },
            1 => Op::Read { slot: (i % 31) as u16 },
            _ => Op::Atomic { slot: (i % 29) as u16, value: i as u64 },
        })
        .collect();
    let mut device = DeviceConfig::gen2_4link_4gb();
    device.fault = FaultPlan::seeded(23)
        .with_poison(30_000)
        .with_link_event(1_700, 1, false)
        .with_link_event(4_300, 1, true);
    let config = SimConfig::chain(device, 4);
    let far = Cub::new(3).unwrap();
    let run = |mode: ExecMode, skip: SkipMode| {
        let mut sim = fabric_sim(&config, mode, skip);
        let links = sim.device_config(0).unwrap().links;
        let mut fingerprints = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let link = i % links;
            let sent = match *op {
                Op::Write { slot, value } => sim.send_to_cube(
                    0,
                    link,
                    far,
                    HmcRqst::Wr16,
                    slot_addr(slot),
                    vec![value, !value],
                ),
                Op::Read { slot } => {
                    sim.send_to_cube(0, link, far, HmcRqst::Rd16, slot_addr(slot), vec![])
                }
                Op::Atomic { slot, value } => sim.send_to_cube(
                    0,
                    link,
                    far,
                    HmcRqst::Xor16,
                    slot_addr(slot),
                    vec![value, 0],
                ),
                _ => unreachable!(),
            };
            match sent {
                Ok(_)
                | Err(HmcError::Stall)
                | Err(HmcError::TagsExhausted)
                | Err(HmcError::LinkDown(_)) => {}
                Err(e) => panic!("unexpected fabric send error: {e}"),
            }
            sim.clock();
            sim.clock_n(800);
            fingerprints.push(sim.state_fingerprint());
            for l in 0..links {
                while sim.recv(0, l).is_some() {}
            }
        }
        sim.clock_n(4_000);
        fingerprints.push(sim.state_fingerprint());
        (fingerprints, sim.stats(0).unwrap().clone())
    };
    let reference = run(ExecMode::Sequential, SkipMode::Off);
    for mode in [ExecMode::Sequential, ExecMode::Parallel { threads: 2 }, ExecMode::Parallel { threads: 8 }] {
        let skipped = run(mode, SkipMode::On);
        assert_eq!(reference.0, skipped.0, "fabric fingerprints diverged: mode={mode:?}");
        assert_eq!(reference.1, skipped.1, "fabric stats diverged: mode={mode:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random traffic over a ring fabric: parallel engines (with and
    /// without idle-cycle skipping) stay bit-identical to the
    /// sequential reference when every op crosses cube boundaries.
    #[test]
    fn fabric_random_traffic_is_bit_identical(
        ops in prop::collection::vec(arb_op(), 1..60),
    ) {
        let config = SimConfig::ring(DeviceConfig::gen2_4link_4gb(), 4);
        let reference =
            drive_fabric(&mut fabric_sim(&config, ExecMode::Sequential, SkipMode::Off), &ops, 0, 200);
        let par = drive_fabric(
            &mut fabric_sim(&config, ExecMode::Parallel { threads: 2 }, SkipMode::Off),
            &ops,
            0,
            200,
        );
        prop_assert_eq!(&reference, &par);
        let par_skip = drive_fabric(
            &mut fabric_sim(&config, ExecMode::Parallel { threads: 4 }, SkipMode::On),
            &ops,
            0,
            200,
        );
        prop_assert_eq!(&reference, &par_skip);
    }
}
