//! Telemetry integration tests: histogram algebra under proptest,
//! golden-file Prometheus/JSON exports of a small deterministic run,
//! request lifecycle span accounting, and the agreement between the
//! exported fault counters and the `REG_LRLL`/`REG_GRLL` registers.
//!
//! The golden files live in `tests/golden/`; regenerate them after an
//! intentional export-format change with `BLESS=1 cargo test --test
//! telemetry` and review the diff like any other code change.

use hmcsim::cmc::ops;
use hmcsim::prelude::*;
use hmcsim::sim::{FaultPlan, Hist, LinkErrorMode, MetricValue, SanitizerConfig, Stage};
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> Hist {
    let mut h = Hist::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(any::<u64>(), 0..64),
        b in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha;
        ab.merge(&hb);
        let mut ba = hb;
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(any::<u64>(), 0..48),
        b in proptest::collection::vec(any::<u64>(), 0..48),
        c in proptest::collection::vec(any::<u64>(), 0..48),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha; // (a ⊕ b) ⊕ c
        left.merge(&hb);
        left.merge(&hc);
        let mut right = hb; // a ⊕ (b ⊕ c)
        right.merge(&hc);
        let mut a_first = ha;
        a_first.merge(&right);
        prop_assert_eq!(left, a_first);
    }

    #[test]
    fn merge_equals_recording_the_concatenation(
        a in proptest::collection::vec(any::<u64>(), 0..64),
        b in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let mut together: Vec<u64> = a.clone();
        together.extend_from_slice(&b);
        prop_assert_eq!(merged, hist_of(&together));
    }

    #[test]
    fn quantile_is_monotone_and_bounded(
        values in proptest::collection::vec(0u64..1 << 40, 1..128),
    ) {
        let h = hist_of(&values);
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        let mut prev = 0u64;
        for p in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let q = h.quantile(p);
            prop_assert!(q >= prev, "quantile({p}) = {q} < quantile at lower p = {prev}");
            prop_assert!(q >= lo, "quantile({p}) = {q} below recorded min {lo}");
            prop_assert!(q <= hi, "quantile({p}) = {q} above recorded max {hi}");
            prev = q;
        }
    }
}

// ---------------------------------------------------------------------
// golden exports
// ---------------------------------------------------------------------

/// A small fully deterministic run exercising every command class:
/// reads, a write, an ADD16 atomic and a CMC lock/unlock pair, with
/// full telemetry (spans + a short time-series window) attached.
fn deterministic_run() -> HmcSim {
    ops::register_builtin_libraries();
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    // The golden exports include the timing backend's metrics; pin the
    // backend so an `HMCSIM_TIMING` override (the CI timing matrix)
    // cannot drift the golden files.
    sim.set_timing_model(TimingSelect::FixedLatency);
    sim.enable_telemetry(TelemetryConfig::with_window(16));
    sim.load_cmc_library(0, ops::MUTEX_LIBRARY).unwrap();

    for (link, addr) in [(0usize, 0x40u64), (1, 0x140), (2, 0x240)] {
        let tag = sim.send_simple(0, link, HmcRqst::Rd16, addr, vec![]).unwrap().unwrap();
        sim.run_until_response(0, link, tag, 100).unwrap();
    }
    let tag = sim.send_simple(0, 1, HmcRqst::Wr16, 0x1000, vec![7, 9]).unwrap().unwrap();
    sim.run_until_response(0, 1, tag, 100).unwrap();
    let tag = sim.send_simple(0, 2, HmcRqst::Add16, 0x2000, vec![5, 0]).unwrap().unwrap();
    sim.run_until_response(0, 2, tag, 100).unwrap();
    let tag = sim.send_cmc(0, 3, ops::mutex::LOCK_CMD, 0x4000, vec![1, 0]).unwrap().unwrap();
    sim.run_until_response(0, 3, tag, 100).unwrap();
    let tag = sim.send_cmc(0, 3, ops::mutex::UNLOCK_CMD, 0x4000, vec![1, 0]).unwrap().unwrap();
    sim.run_until_response(0, 3, tag, 100).unwrap();

    // Run out the clock to a round cycle count so the last time-series
    // window closes deterministically.
    while !sim.cycle().is_multiple_of(32) {
        sim.clock();
    }
    sim
}

/// Compares `rendered` against the golden file, or rewrites the golden
/// file when `BLESS` is set in the environment.
fn check_golden(rendered: &str, name: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with BLESS=1", path.display()));
    assert_eq!(
        rendered,
        golden,
        "{name} drifted from the golden export; if intentional, regenerate with \
         BLESS=1 cargo test --test telemetry and review the diff"
    );
}

#[test]
fn golden_prometheus_export() {
    let sim = deterministic_run();
    let report = sim.telemetry_report().expect("telemetry enabled");
    check_golden(&report.to_prometheus(), "telemetry.prom");
}

#[test]
fn golden_json_export() {
    let sim = deterministic_run();
    let report = sim.telemetry_report().expect("telemetry enabled");
    check_golden(&report.to_json(), "telemetry.json");
}

#[test]
fn report_is_reproducible_and_classified() {
    let a = deterministic_run().telemetry_report().unwrap();
    let b = deterministic_run().telemetry_report().unwrap();
    assert_eq!(a, b, "identical runs export identical registries");

    // Every command class the run exercised shows up in its own
    // histogram, and they sum to the total.
    let class_count = |name: &str| {
        a.get(&format!("dev0/latency/{name}")).and_then(|m| m.as_hist()).map_or(0, Hist::count)
    };
    assert_eq!(class_count("read"), 3);
    assert_eq!(class_count("write"), 1);
    assert_eq!(class_count("atomic"), 1);
    assert_eq!(class_count("cmc"), 2);
    let total = a.get("dev0/latency/total").and_then(|m| m.as_hist()).unwrap();
    assert_eq!(total.count(), 7, "class histograms partition the total");
}

// ---------------------------------------------------------------------
// lifecycle spans
// ---------------------------------------------------------------------

#[test]
fn stage_durations_partition_the_round_trip() {
    // An uncontended Rd16 takes exactly 3 cycles; the five per-stage
    // histograms must partition that round trip with no gap and no
    // overlap.
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    sim.enable_telemetry(TelemetryConfig::full());
    let tag = sim.send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![]).unwrap().unwrap();
    let rsp = sim.run_until_response(0, 0, tag, 100).unwrap();
    assert_eq!(rsp.latency, 3, "pinned uncontended round trip");

    let report = sim.telemetry_report().unwrap();
    let mut stage_sum = 0;
    for stage in Stage::ALL {
        let h = report
            .get(&format!("dev0/stage/{}", stage.name()))
            .and_then(|m| m.as_hist())
            .unwrap_or_else(|| panic!("stage histogram {} exported", stage.name()));
        assert_eq!(h.count(), 1, "one sample per stage for one request");
        stage_sum += h.sum();
    }
    assert_eq!(stage_sum, rsp.latency, "stages partition the measured latency");
}

#[test]
fn windowed_series_track_link_traffic() {
    let sim = deterministic_run();
    let report = sim.telemetry_report().unwrap();
    let Some(MetricValue::Series { window, points }) = report.get("dev0/link0/series/flits")
    else {
        panic!("link flit series exported");
    };
    assert_eq!(*window, 16);
    assert!(!points.is_empty());
    let series_total: u64 = points.iter().map(|&(_, sum, _)| sum).sum();
    let counter = report.get("dev0/link0/flits").and_then(|m| m.as_scalar()).unwrap();
    assert_eq!(series_total, counter, "series windows sum to the flit counter");
    // Window start cycles are strictly increasing multiples of the
    // window length.
    for pair in points.windows(2) {
        assert!(pair[0].0 < pair[1].0);
    }
}

// ---------------------------------------------------------------------
// fault / register agreement
// ---------------------------------------------------------------------

#[test]
fn exported_retries_agree_with_retry_registers() {
    // Deterministic link errors on every 3rd packet: the telemetry
    // export, the per-link stats and the device's REG_GRLL register
    // must all report the same retry count — they are pulled from the
    // same canonical sources, never double-counted.
    let mut cfg = DeviceConfig::gen2_4link_4gb();
    cfg.fault = FaultPlan::none().with_link_errors(LinkErrorMode::EveryNth(3));
    let mut sim = HmcSim::new(cfg).unwrap();
    sim.enable_telemetry(TelemetryConfig::full());
    for i in 0..12u64 {
        let link = (i % 4) as usize;
        let tag = sim.send_simple(0, link, HmcRqst::Rd16, 0x40 + i * 0x100, vec![]).unwrap().unwrap();
        sim.run_until_response(0, link, tag, 200).unwrap();
    }

    let report = sim.telemetry_report().unwrap();
    let retries_metric =
        report.get("dev0/faults/retries").and_then(|m| m.as_scalar()).unwrap();
    let grll = report.get("dev0/regs/grll").and_then(|m| m.as_scalar()).unwrap();
    let stats_total: u64 =
        (0..4).map(|l| sim.link_stats(0, l).unwrap().retries).sum();
    assert!(retries_metric > 0, "the fault plan injected link errors");
    assert_eq!(retries_metric, stats_total, "export matches LinkStats");
    assert_eq!(retries_metric, grll, "export matches REG_GRLL");

    // Per-link counters decompose the total.
    let per_link: u64 = (0..4)
        .filter_map(|l| report.get(&format!("dev0/link{l}/retries")))
        .filter_map(MetricValue::as_scalar)
        .sum();
    assert_eq!(per_link, retries_metric);
}

#[test]
fn forensic_dump_embeds_the_telemetry_report() {
    // When both observers are attached, the sanitizer's forensic dump
    // carries the full telemetry JSON so a post-mortem sees the
    // metrics at the violating cycle.
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    sim.enable_sanitizer(SanitizerConfig::report());
    sim.enable_telemetry(TelemetryConfig::full());
    let tag = sim.send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![]).unwrap().unwrap();
    sim.run_until_response(0, 0, tag, 100).unwrap();

    let phantom = Response::new(
        HmcResponse::RdRs,
        Tag::new(9).unwrap(),
        Slid::new(0).unwrap(),
        Cub::new(0).unwrap(),
        vec![0, 0],
    )
    .unwrap();
    sim.debug_inject_phantom_response(0, 0, phantom);
    sim.clock_n(4);
    let dump = sim.take_forensic_dump().expect("violation produced a dump");
    let telemetry = dump.telemetry_json.as_deref().expect("telemetry embedded in dump");
    assert!(telemetry.contains("dev0/latency/total"));
    assert!(dump.to_json().contains("\"telemetry\":{"), "dump JSON carries the report");
}
