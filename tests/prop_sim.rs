//! Property tests spanning the whole stack: random command mixes
//! against a shadow memory model, conservation, and determinism.

use hmcsim::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Write { slot: u8, value: u64 },
    Read { slot: u8 },
    Inc { slot: u8 },
    Xor { slot: u8, value: u64 },
    Swap { slot: u8, value: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u64>()).prop_map(|(slot, value)| Op::Write { slot, value }),
        any::<u8>().prop_map(|slot| Op::Read { slot }),
        any::<u8>().prop_map(|slot| Op::Inc { slot }),
        (any::<u8>(), any::<u64>()).prop_map(|(slot, value)| Op::Xor { slot, value }),
        (any::<u8>(), any::<u64>()).prop_map(|(slot, value)| Op::Swap { slot, value }),
    ]
}

fn slot_addr(slot: u8) -> u64 {
    0x10_0000 + (slot as u64) * 16
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A sequential stream of randomly chosen operations through the
    /// full pipeline behaves exactly like a flat shadow array.
    #[test]
    fn random_op_stream_matches_shadow_model(ops in prop::collection::vec(arb_op(), 1..60)) {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let mut shadow = std::collections::HashMap::<u8, u128>::new();
        for (i, op) in ops.iter().enumerate() {
            let link = i % 4;
            match *op {
                Op::Write { slot, value } => {
                    let tag = sim
                        .send_simple(0, link, HmcRqst::Wr16, slot_addr(slot), vec![value, 0])
                        .unwrap().unwrap();
                    sim.run_until_response(0, link, tag, 1000).unwrap();
                    shadow.insert(slot, value as u128);
                }
                Op::Read { slot } => {
                    let tag = sim
                        .send_simple(0, link, HmcRqst::Rd16, slot_addr(slot), vec![])
                        .unwrap().unwrap();
                    let rsp = sim.run_until_response(0, link, tag, 1000).unwrap();
                    let want = shadow.get(&slot).copied().unwrap_or(0);
                    prop_assert_eq!(rsp.rsp.payload[0], want as u64);
                    prop_assert_eq!(rsp.rsp.payload[1], (want >> 64) as u64);
                }
                Op::Inc { slot } => {
                    let tag = sim
                        .send_simple(0, link, HmcRqst::Inc8, slot_addr(slot), vec![])
                        .unwrap().unwrap();
                    sim.run_until_response(0, link, tag, 1000).unwrap();
                    let v = shadow.entry(slot).or_insert(0);
                    let lo = (*v as u64).wrapping_add(1);
                    *v = (*v & !0xFFFF_FFFF_FFFF_FFFFu128) | lo as u128;
                }
                Op::Xor { slot, value } => {
                    let tag = sim
                        .send_simple(0, link, HmcRqst::Xor16, slot_addr(slot), vec![value, 0])
                        .unwrap().unwrap();
                    sim.run_until_response(0, link, tag, 1000).unwrap();
                    *shadow.entry(slot).or_insert(0) ^= value as u128;
                }
                Op::Swap { slot, value } => {
                    let tag = sim
                        .send_simple(0, link, HmcRqst::Swap16, slot_addr(slot), vec![value, 0])
                        .unwrap().unwrap();
                    let rsp = sim.run_until_response(0, link, tag, 1000).unwrap();
                    let old = shadow.insert(slot, value as u128).unwrap_or(0);
                    prop_assert_eq!(rsp.rsp.payload[0], old as u64);
                }
            }
        }
        // Final memory agrees with the shadow for every touched slot.
        for (&slot, &want) in &shadow {
            let got = sim.mem_read_u64(0, slot_addr(slot)).unwrap() as u128
                | ((sim.mem_read_u64(0, slot_addr(slot) + 8).unwrap() as u128) << 64);
            prop_assert_eq!(got, want, "slot {}", slot);
        }
    }

    /// Pipelined (windowed) issue never loses or duplicates responses
    /// regardless of the traffic pattern.
    #[test]
    fn windowed_issue_conserves_packets(
        addrs in prop::collection::vec(0u64..256, 1..200),
    ) {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let mut sent = 0u64;
        for (i, &a) in addrs.iter().enumerate() {
            match sim.send_simple(0, i % 4, HmcRqst::Rd16, a * 16, vec![]) {
                Ok(Some(_)) => sent += 1,
                Ok(None) => unreachable!("reads respond"),
                Err(HmcError::Stall) | Err(HmcError::TagsExhausted) => {}
                Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
            }
            sim.clock();
        }
        sim.drain(1_000_000);
        let mut got = 0u64;
        for link in 0..4 {
            while sim.recv(0, link).is_some() {
                got += 1;
            }
        }
        prop_assert_eq!(got, sent);
        prop_assert!(sim.is_quiescent());
    }

    /// Queue conservation still holds with the fault machinery active
    /// under sustained saturation: every accepted request produces
    /// exactly one response — never dropped behind a downed link,
    /// never duplicated by the link-layer retry path, with vault
    /// errors, poisoning and wire corruption all firing.
    #[test]
    fn windowed_issue_conserves_packets_under_faults(
        addrs in prop::collection::vec(0u64..256, 1..200),
        seed in any::<u64>(),
    ) {
        let mut config = DeviceConfig::gen2_4link_4gb();
        // The schedule must end with every link up so the drain below
        // can complete.
        config.fault = hmcsim::sim::FaultPlan::seeded(seed)
            .with_vault_errors(100_000)
            .with_poison(50_000)
            .with_link_errors(hmcsim::sim::LinkErrorMode::Random { per_million: 20_000 })
            .with_link_event(10, 1, false)
            .with_link_event(60, 1, true);
        let mut sim = HmcSim::new(config).unwrap();
        let mut sent = 0u64;
        for (i, &a) in addrs.iter().enumerate() {
            match sim.send_simple(0, i % 4, HmcRqst::Rd16, a * 16, vec![]) {
                Ok(Some(_)) => sent += 1,
                Ok(None) => unreachable!("reads respond"),
                Err(HmcError::Stall)
                | Err(HmcError::TagsExhausted)
                | Err(HmcError::LinkDown(_)) => {}
                Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
            }
            sim.clock();
        }
        sim.drain(1_000_000);
        let mut got = 0u64;
        for link in 0..4 {
            while sim.recv(0, link).is_some() {
                got += 1;
            }
        }
        prop_assert_eq!(got, sent);
        prop_assert!(sim.is_quiescent());
    }

    /// The simulator is deterministic: identical command streams give
    /// identical latencies and identical final statistics.
    #[test]
    fn simulation_is_deterministic(addrs in prop::collection::vec(0u64..64, 1..40)) {
        let run = || {
            let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
            let mut lat = Vec::new();
            for (i, &a) in addrs.iter().enumerate() {
                let tag = sim
                    .send_simple(0, i % 4, HmcRqst::Inc8, a * 8, vec![])
                    .unwrap().unwrap();
                let rsp = sim.run_until_response(0, i % 4, tag, 10_000).unwrap();
                lat.push(rsp.latency);
            }
            (lat, sim.stats(0).unwrap().clone())
        };
        let (lat_a, stats_a) = run();
        let (lat_b, stats_b) = run();
        prop_assert_eq!(lat_a, lat_b);
        prop_assert_eq!(stats_a.atomics, stats_b.atomics);
        prop_assert_eq!(stats_a.rqst_flits, stats_b.rqst_flits);
    }

    /// Address decomposition is a bijection over random addresses.
    #[test]
    fn address_map_bijection(addr in 0u64..(4 << 30)) {
        let map = hmcsim::sim::AddressMap::new(&DeviceConfig::gen2_4link_4gb());
        let loc = map.decompose(addr).unwrap();
        prop_assert_eq!(map.recompose(&loc), addr);
        prop_assert!(loc.vault < 32);
        prop_assert!(loc.bank < 16);
        prop_assert!(loc.quad < 4);
    }
}
