//! Trace-subsystem integration: trace file content for standard
//! commands, CMC discrete tracing, stall and latency records.

use hmcsim::prelude::*;
use hmcsim::sim::{TraceBuffer, TraceLevel, Tracer};

fn traced_sim(level: TraceLevel) -> (HmcSim, TraceBuffer) {
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    let buf = TraceBuffer::new();
    sim.set_tracer(Tracer::to_buffer(level, buf.clone()));
    (sim, buf)
}

#[test]
fn standard_commands_trace_by_mnemonic() {
    let (mut sim, buf) = traced_sim(TraceLevel::CMD);
    for (cmd, payload) in [
        (HmcRqst::Wr16, vec![1u64, 2]),
        (HmcRqst::Rd16, vec![]),
        (HmcRqst::Inc8, vec![]),
        (HmcRqst::CasEq8, vec![1, 0]),
    ] {
        let tag = sim.send_simple(0, 0, cmd, 0x1000, payload).unwrap().unwrap();
        sim.run_until_response(0, 0, tag, 100).unwrap();
    }
    for name in ["CMD=WR16", "CMD=RD16", "CMD=INC8", "CMD=CASEQ8"] {
        assert_eq!(buf.grep(name).len(), 1, "{name}");
    }
    // Every CMD line carries the physical location.
    for line in buf.lines() {
        assert!(line.contains("VAULT="), "{line}");
        assert!(line.contains("ADDR=0x1000"), "{line}");
    }
}

#[test]
fn cmc_ops_trace_under_their_cmc_str_name() {
    hmcsim::cmc::ops::register_builtin_libraries();
    let (mut sim, buf) = traced_sim(TraceLevel::CMD | TraceLevel::CMC);
    sim.load_cmc_library(0, hmcsim::cmc::ops::MUTEX_LIBRARY).unwrap();
    let tag = sim.send_cmc(0, 0, 125, 0x4000, vec![7, 0]).unwrap().unwrap();
    sim.run_until_response(0, 0, tag, 100).unwrap();
    let tag = sim.send_cmc(0, 0, 127, 0x4000, vec![7, 0]).unwrap().unwrap();
    sim.run_until_response(0, 0, tag, 100).unwrap();

    // Discrete tracing (paper §IV-A): CMC ops resolve by name, not as
    // opaque command codes.
    assert_eq!(buf.grep("CMD=hmc_lock").len(), 1);
    assert_eq!(buf.grep("CMD=hmc_unlock").len(), 1);
    assert_eq!(buf.grep("op=hmc_lock").len(), 1, "CMC detail line");
    assert!(buf.grep("CMD=CMC125").is_empty(), "no opaque code tracing");
}

#[test]
fn latency_traces_record_round_trips() {
    let (mut sim, buf) = traced_sim(TraceLevel::LATENCY);
    let tag = sim.send_simple(0, 2, HmcRqst::Rd16, 0x40, vec![]).unwrap().unwrap();
    sim.run_until_response(0, 2, tag, 100).unwrap();
    let lines = buf.grep("LATENCY");
    assert_eq!(lines.len(), 1);
    assert!(lines[0].contains("lat=3"), "{}", lines[0]);
    assert!(lines[0].contains("link=2"), "{}", lines[0]);
}

#[test]
fn stall_traces_appear_under_pressure() {
    let mut cfg = DeviceConfig::gen2_4link_4gb();
    cfg.vault_queue_depth = 1;
    // A slow bank keeps the vault from draining, so the depth-1
    // request queue backs up into the crossbar.
    cfg.bank_latency = 8;
    let mut sim = HmcSim::new(cfg).unwrap();
    let buf = TraceBuffer::new();
    sim.set_tracer(Tracer::to_buffer(
        TraceLevel::STALL | TraceLevel::BANK,
        buf.clone(),
    ));
    for _ in 0..16 {
        let _ = sim.send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![]);
        sim.clock();
    }
    sim.drain(1000);
    assert!(!buf.grep("vault rqst queue full").is_empty());
    assert!(!buf.grep("bank busy").is_empty());
}

#[test]
fn disabled_levels_record_nothing() {
    let (mut sim, buf) = traced_sim(TraceLevel::BANK);
    let tag = sim.send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![]).unwrap().unwrap();
    sim.run_until_response(0, 0, tag, 100).unwrap();
    assert!(buf.is_empty(), "no CMD/LATENCY events at BANK-only level");
}

#[test]
fn trace_to_file_writes_lines() {
    let path = std::env::temp_dir().join("hmcsim_trace_test.log");
    let _ = std::fs::remove_file(&path);
    {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let file = std::fs::File::create(&path).unwrap();
        sim.set_tracer(Tracer::to_writer(TraceLevel::CMD, Box::new(file)));
        let tag = sim.send_simple(0, 0, HmcRqst::Inc8, 0x40, vec![]).unwrap().unwrap();
        sim.run_until_response(0, 0, tag, 100).unwrap();
    }
    let content = std::fs::read_to_string(&path).unwrap();
    assert!(content.contains("HMCSIM_TRACE"));
    assert!(content.contains("CMD=INC8"));
    let _ = std::fs::remove_file(&path);
}
