//! The paper's "No Simulation Perturbation" requirement (§IV-A) as a
//! regression test: every optional extension this repository adds
//! (link protocol, DRAM timing, refresh, quad affinity, arbitration,
//! revision gate) is inert at its default, so the evaluation numbers
//! are pinned. If a change moves these values, it perturbed the
//! baseline model and must be gated behind configuration instead.

use hmcsim::cmc::ops;
use hmcsim::prelude::*;
use hmcsim::workloads::{MutexKernel, MutexKernelConfig};

fn metrics(threads: usize) -> hmcsim::workloads::RunMetrics {
    ops::register_builtin_libraries();
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    sim.load_cmc_library(0, ops::MUTEX_LIBRARY).unwrap();
    MutexKernel::new(MutexKernelConfig { threads, ..Default::default() })
        .run(&mut sim)
        .unwrap()
        .metrics
}

#[test]
fn pinned_mutex_results_at_sixteen_threads() {
    let m = metrics(16);
    assert_eq!(m.min_cycle(), 19);
    assert_eq!(m.max_cycle(), 49);
    assert!((m.avg_cycle() - 40.56).abs() < 0.3, "avg {:.2}", m.avg_cycle());
}

#[test]
fn pinned_uncontended_round_trip() {
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    let tag = sim.send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![]).unwrap().unwrap();
    assert_eq!(sim.run_until_response(0, 0, tag, 100).unwrap().latency, 3);
}

#[test]
fn pinned_two_thread_algorithm_floor() {
    let m = metrics(2);
    assert_eq!(m.min_cycle(), 6, "the paper's Table VI anchor");
}
