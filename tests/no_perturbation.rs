//! The paper's "No Simulation Perturbation" requirement (§IV-A) as a
//! regression test: every optional extension this repository adds
//! (link protocol, DRAM timing, refresh, quad affinity, arbitration,
//! revision gate) is inert at its default, so the evaluation numbers
//! are pinned. If a change moves these values, it perturbed the
//! baseline model and must be gated behind configuration instead.

use hmcsim::cmc::ops;
use hmcsim::prelude::*;
use hmcsim::workloads::{MutexKernel, MutexKernelConfig};

fn metrics(threads: usize) -> hmcsim::workloads::RunMetrics {
    ops::register_builtin_libraries();
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    sim.load_cmc_library(0, ops::MUTEX_LIBRARY).unwrap();
    MutexKernel::new(MutexKernelConfig { threads, ..Default::default() })
        .run(&mut sim)
        .unwrap()
        .metrics
}

#[test]
fn pinned_mutex_results_at_sixteen_threads() {
    let m = metrics(16);
    assert_eq!(m.min_cycle(), 19);
    assert_eq!(m.max_cycle(), 49);
    assert!((m.avg_cycle() - 40.56).abs() < 0.3, "avg {:.2}", m.avg_cycle());
}

#[test]
fn pinned_uncontended_round_trip() {
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    let tag = sim.send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![]).unwrap().unwrap();
    assert_eq!(sim.run_until_response(0, 0, tag, 100).unwrap().latency, 3);
}

#[test]
fn pinned_two_thread_algorithm_floor() {
    let m = metrics(2);
    assert_eq!(m.min_cycle(), 6, "the paper's Table VI anchor");
}

#[test]
fn sanitizer_report_mode_is_zero_perturbation() {
    // The sanitizer only observes: a run under `Report` must be
    // bit-identical to an unsanitized run — same pinned metrics, same
    // cycle count, same full device-state fingerprint.
    ops::register_builtin_libraries();
    let run = |sanitize: bool| {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        if sanitize {
            sim.enable_sanitizer(SanitizerConfig::report());
        }
        sim.load_cmc_library(0, ops::MUTEX_LIBRARY).unwrap();
        let m = MutexKernel::new(MutexKernelConfig { threads: 16, ..Default::default() })
            .run(&mut sim)
            .unwrap()
            .metrics;
        let violations = sim.sanitizer_report().map(|r| r.total_violations);
        (m.min_cycle(), m.max_cycle(), m.avg_cycle(), sim.cycle(), sim.state_fingerprint(), violations)
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(off.0, on.0, "min latency unchanged");
    assert_eq!(off.1, on.1, "max latency unchanged");
    assert_eq!(off.2, on.2, "avg latency unchanged");
    assert_eq!(off.3, on.3, "cycle count unchanged");
    assert_eq!(off.4, on.4, "device state bit-identical under the sanitizer");
    assert_eq!(off.5, None);
    assert_eq!(on.5, Some(0), "and the audited run is invariant-clean");
}

#[test]
fn telemetry_full_mode_is_zero_perturbation() {
    // Telemetry is a pure observer, even in full span + time-series
    // mode: a run with it enabled must be bit-identical to a bare
    // run — same pinned metrics, same cycle count, same full
    // device-state fingerprint.
    ops::register_builtin_libraries();
    let run = |telemetry: bool| {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        if telemetry {
            sim.enable_telemetry(TelemetryConfig::full());
        }
        sim.load_cmc_library(0, ops::MUTEX_LIBRARY).unwrap();
        let m = MutexKernel::new(MutexKernelConfig { threads: 16, ..Default::default() })
            .run(&mut sim)
            .unwrap()
            .metrics;
        (m.min_cycle(), m.max_cycle(), m.avg_cycle(), sim.cycle(), sim.state_fingerprint())
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(off, on, "device state bit-identical under full telemetry");
}

/// The parallel engine is itself a zero-perturbation feature: the
/// mutex evaluation (CMC traffic, which falls back to the serial path
/// inside parallel mode) and a pure data-path Triad run (which
/// exercises the planned parallel fast path) must both reproduce the
/// sequential pinned numbers and fingerprints at every thread count.
#[test]
fn parallel_mode_is_zero_perturbation() {
    use hmcsim::workloads::kernels::triad::{TriadConfig, TriadKernel};
    ops::register_builtin_libraries();
    let mutex_run = |mode: ExecMode| {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        sim.set_exec_mode(mode);
        sim.load_cmc_library(0, ops::MUTEX_LIBRARY).unwrap();
        let m = MutexKernel::new(MutexKernelConfig { threads: 16, ..Default::default() })
            .run(&mut sim)
            .unwrap()
            .metrics;
        (m.min_cycle(), m.max_cycle(), m.avg_cycle(), sim.cycle(), sim.state_fingerprint())
    };
    let triad_run = |mode: ExecMode| {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        sim.set_exec_mode(mode);
        let out = TriadKernel::new(TriadConfig { elements: 1024, ..Default::default() })
            .run(&mut sim)
            .unwrap();
        (out.cycles, sim.cycle(), sim.state_fingerprint())
    };
    let mutex_ref = mutex_run(ExecMode::Sequential);
    assert_eq!(mutex_ref.0, 19, "pinned mutex minimum");
    assert_eq!(mutex_ref.1, 49, "pinned mutex maximum");
    let triad_ref = triad_run(ExecMode::Sequential);
    for threads in [1usize, 2, 4, 8] {
        let mode = ExecMode::Parallel { threads };
        assert_eq!(mutex_run(mode), mutex_ref, "mutex diverged at {threads} threads");
        assert_eq!(triad_run(mode), triad_ref, "triad diverged at {threads} threads");
    }
}

/// The event-horizon engine is a zero-perturbation feature: the
/// pinned mutex evaluation and a pure data-path Triad run must
/// reproduce the sequential full-execution numbers and fingerprints
/// with idle skipping enabled, on both engines.
#[test]
fn skip_mode_is_zero_perturbation() {
    use hmcsim::workloads::kernels::triad::{TriadConfig, TriadKernel};
    ops::register_builtin_libraries();
    let mutex_run = |mode: ExecMode, skip: SkipMode| {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        sim.set_exec_mode(mode);
        sim.set_skip_mode(skip);
        sim.load_cmc_library(0, ops::MUTEX_LIBRARY).unwrap();
        let m = MutexKernel::new(MutexKernelConfig { threads: 16, ..Default::default() })
            .run(&mut sim)
            .unwrap()
            .metrics;
        let stats = sim.stats(0).unwrap().clone();
        (m.min_cycle(), m.max_cycle(), m.avg_cycle(), sim.cycle(), sim.state_fingerprint(), stats)
    };
    let triad_run = |mode: ExecMode, skip: SkipMode| {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        sim.set_exec_mode(mode);
        sim.set_skip_mode(skip);
        let out = TriadKernel::new(TriadConfig { elements: 1024, ..Default::default() })
            .run(&mut sim)
            .unwrap();
        (out.cycles, sim.cycle(), sim.state_fingerprint())
    };
    let mutex_ref = mutex_run(ExecMode::Sequential, SkipMode::Off);
    assert_eq!(mutex_ref.0, 19, "pinned mutex minimum");
    assert_eq!(mutex_ref.1, 49, "pinned mutex maximum");
    let triad_ref = triad_run(ExecMode::Sequential, SkipMode::Off);
    for mode in [ExecMode::Sequential, ExecMode::Parallel { threads: 4 }] {
        let mutex = mutex_run(mode, SkipMode::On);
        assert_eq!(mutex, mutex_ref, "mutex diverged with skipping: {mode:?}");
        assert_eq!(
            mutex.5.latency, mutex_ref.5.latency,
            "latency histogram diverged with skipping: {mode:?}"
        );
        assert_eq!(triad_run(mode, SkipMode::On), triad_ref, "triad diverged with skipping: {mode:?}");
    }
}

/// The flight recorder is a pure observer: attaching it must leave
/// the pinned mutex evaluation bit-identical — same metrics, same
/// cycle count, same device-state fingerprint — on every engine
/// combination, while still retaining a non-empty structured
/// timeline.
#[test]
fn flight_recorder_is_zero_perturbation() {
    ops::register_builtin_libraries();
    let run = |mode: ExecMode, skip: SkipMode, record: bool| {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        sim.set_exec_mode(mode);
        sim.set_skip_mode(skip);
        if record {
            sim.enable_flight_recorder(1024);
        }
        sim.load_cmc_library(0, ops::MUTEX_LIBRARY).unwrap();
        let m = MutexKernel::new(MutexKernelConfig { threads: 16, ..Default::default() })
            .run(&mut sim)
            .unwrap()
            .metrics;
        let retained = sim.flight_snapshot().map(|snap| snap.len());
        (m.min_cycle(), m.max_cycle(), m.avg_cycle(), sim.cycle(), sim.state_fingerprint(), retained)
    };
    for mode in [ExecMode::Sequential, ExecMode::Parallel { threads: 8 }] {
        for skip in [SkipMode::Off, SkipMode::On] {
            let off = run(mode, skip, false);
            let on = run(mode, skip, true);
            assert_eq!(off.0, on.0, "min latency unchanged: {mode:?} {skip:?}");
            assert_eq!(off.1, on.1, "max latency unchanged: {mode:?} {skip:?}");
            assert_eq!(off.2, on.2, "avg latency unchanged: {mode:?} {skip:?}");
            assert_eq!(off.3, on.3, "cycle count unchanged: {mode:?} {skip:?}");
            assert_eq!(off.4, on.4, "device state bit-identical: {mode:?} {skip:?}");
            assert_eq!(off.5, None);
            assert!(on.5.unwrap() > 0, "recorder retained a timeline: {mode:?} {skip:?}");
        }
    }
}

/// The timing-model seam is itself zero-perturbation: on the stock
/// configuration (flat `bank_latency`, row knobs zero, refresh off)
/// all three backends collapse to the paper's model, so swapping them
/// must leave the pinned mutex evaluation bit-identical. The backends
/// are only allowed to differ once row timing or refresh is
/// configured — see `tests/timing_determinism.rs` for that matrix.
#[test]
fn timing_backends_are_inert_on_the_default_config() {
    ops::register_builtin_libraries();
    let run = |timing: TimingSelect| {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        sim.set_timing_model(timing);
        sim.load_cmc_library(0, ops::MUTEX_LIBRARY).unwrap();
        let m = MutexKernel::new(MutexKernelConfig { threads: 16, ..Default::default() })
            .run(&mut sim)
            .unwrap()
            .metrics;
        (m.min_cycle(), m.max_cycle(), m.avg_cycle(), sim.cycle(), sim.state_fingerprint())
    };
    let fixed = run(TimingSelect::FixedLatency);
    assert_eq!(fixed.0, 19, "pinned mutex minimum");
    assert_eq!(fixed.1, 49, "pinned mutex maximum");
    for timing in [TimingSelect::RowBuffer, TimingSelect::Validated] {
        assert_eq!(run(timing), fixed, "{timing:?} perturbed the stock model");
    }
}

/// Sanitizer report mode stays zero-perturbation when stage 3 runs on
/// the parallel engine: same fingerprint as the unsanitized parallel
/// run, and the packet-conservation audit stays clean.
#[test]
fn sanitizer_under_parallel_engine_is_zero_perturbation() {
    ops::register_builtin_libraries();
    let run = |sanitize: bool| {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        sim.set_exec_mode(ExecMode::Parallel { threads: 4 });
        sim.load_cmc_library(0, ops::MUTEX_LIBRARY).unwrap();
        if sanitize {
            sim.enable_sanitizer(SanitizerConfig::report());
        }
        let m = MutexKernel::new(MutexKernelConfig { threads: 16, ..Default::default() })
            .run(&mut sim)
            .unwrap()
            .metrics;
        let violations = sim.sanitizer_report().map(|r| r.total_violations);
        (m.min_cycle(), m.max_cycle(), m.avg_cycle(), sim.cycle(), sim.state_fingerprint(), violations)
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(off.4, on.4, "parallel state bit-identical under the sanitizer");
    assert_eq!((off.0, off.1, off.2, off.3), (on.0, on.1, on.2, on.3));
    assert_eq!(off.5, None);
    assert_eq!(on.5, Some(0), "conservation audit clean under the parallel engine");
}
