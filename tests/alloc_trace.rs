//! Proof that tracing costs nothing when nobody is listening: a
//! counting global allocator wraps the system allocator, and the
//! structured emission path must not allocate at all with tracing off
//! — no deferred `String`s, no format machinery — on either engine.
//!
//! Everything runs inside one `#[test]` so no concurrently-running
//! test can perturb the global counter.

use hmcsim::cmc::ops;
use hmcsim::prelude::*;
use hmcsim::sim::{FlightRecorder, TraceKind, TraceRecord, Tracer};
use hmcsim::workloads::{MutexKernel, MutexKernelConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations it performed.
fn allocations_in(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

/// Least allocation count over `n` runs of `f`. The counter is global,
/// so harness threads (and, for parallel runs, `mpsc` timing) add
/// occasional noise on top of the code under test; the minimum is the
/// reproducible floor.
fn min_allocations(n: usize, mut f: impl FnMut()) -> u64 {
    (0..n).map(|_| allocations_in(&mut f)).min().expect("n > 0")
}

/// A representative mix of hot-path packet events.
fn sample_records() -> [TraceRecord; 4] {
    [
        TraceRecord { dev: 0, link: 1, tag: 7, a: 9, ..TraceRecord::new(3, TraceKind::HostSend) },
        TraceRecord { dev: 0, vault: 5, bank: 2, ..TraceRecord::new(4, TraceKind::BankBusy) },
        TraceRecord { dev: 0, tag: 7, a: 3, link: 1, ..TraceRecord::new(6, TraceKind::Deliver) },
        TraceRecord { a: 10, b: 90, ..TraceRecord::new(7, TraceKind::IdleSkip) },
    ]
}

/// Reproducible allocation floor of the pinned mutex evaluation (16
/// simulated threads) after setup, on the given engine, optionally
/// with the flight recorder attached.
fn run_allocations(mode: ExecMode, record: bool) -> u64 {
    min_allocations(3, || {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        sim.set_exec_mode(mode);
        if record {
            sim.enable_flight_recorder(256);
        }
        sim.load_cmc_library(0, ops::MUTEX_LIBRARY).unwrap();
        MutexKernel::new(MutexKernelConfig { threads: 16, ..Default::default() })
            .run(&mut sim)
            .unwrap();
    })
}

#[test]
fn traced_off_emission_is_allocation_free() {
    // --- The emission path itself. -----------------------------------
    // With nothing attached, emit() must early-out without rendering:
    // zero allocations across any volume of events.
    let mut tracer = Tracer::disabled();
    for rec in sample_records() {
        tracer.emit(rec); // warm-up: touch every code path once
    }
    let count = min_allocations(3, || {
        for _ in 0..10_000 {
            for rec in sample_records() {
                tracer.emit(rec);
            }
        }
    });
    assert_eq!(count, 0, "traced-off emission allocated {count} times");

    // With only the flight recorder attached, records land in the
    // fixed-capacity rings unformatted: once a ring has reached
    // capacity (eviction regime), steady-state emission is
    // allocation-free too — no text is ever rendered.
    let mut tracer = Tracer::disabled();
    tracer.attach_flight(FlightRecorder::new(64));
    for _ in 0..65 {
        for rec in sample_records() {
            tracer.emit(rec); // fill every touched lane past capacity
        }
    }
    let count = min_allocations(3, || {
        for _ in 0..10_000 {
            for rec in sample_records() {
                tracer.emit(rec);
            }
        }
    });
    assert_eq!(count, 0, "flight-recorder steady state allocated {count} times");

    // --- The whole engine, differentially. ---------------------------
    // How many structured events does the pinned run emit? (Retained
    // plus evicted; the deliberately small ring forces eviction.)
    ops::register_builtin_libraries();
    let events = {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        sim.set_exec_mode(ExecMode::Parallel { threads: 4 });
        sim.enable_flight_recorder(256);
        sim.load_cmc_library(0, ops::MUTEX_LIBRARY).unwrap();
        MutexKernel::new(MutexKernelConfig { threads: 16, ..Default::default() })
            .run(&mut sim)
            .unwrap();
        let snap = sim.flight_snapshot().unwrap();
        snap.len() as u64 + snap.lanes.iter().map(|l| l.dropped).sum::<u64>()
    };
    assert!(events > 50, "the pinned run emits a substantial timeline ({events} events)");

    // The traced-off sequential floor is exactly reproducible (single
    // thread, no hidden lazily-growing trace state)...
    let seq_off = run_allocations(ExecMode::Sequential, false);
    assert_eq!(
        seq_off,
        run_allocations(ExecMode::Sequential, false),
        "sequential traced-off allocation floor is not reproducible"
    );

    // ...the parallel floor jitters by a handful of `mpsc` internals,
    // but never by anything scaling with the event count: one string
    // per event would move it by `events` allocations.
    let par_off = run_allocations(ExecMode::Parallel { threads: 4 }, false);
    let par_off_again = run_allocations(ExecMode::Parallel { threads: 4 }, false);
    let spread = par_off.abs_diff(par_off_again);
    assert!(
        spread < events / 4,
        "parallel traced-off floor moved by {spread} allocations across runs \
         ({par_off} vs {par_off_again}); per-event allocation suspected ({events} events)"
    );

    // ...and attaching the recorder strictly adds allocations (ring
    // growth, deferred worker records): if the traced-off run were
    // secretly paying for tracing, these could not differ.
    let par_on = run_allocations(ExecMode::Parallel { threads: 4 }, true);
    assert!(
        par_off < par_on,
        "recorder-on run should allocate more than traced-off ({par_off} vs {par_on})"
    );
}
