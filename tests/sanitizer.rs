//! SimSanitizer integration tests: invariant detection, forensic
//! dumps, checkpoint/replay, recovery, and the stall watchdog.
//!
//! The acceptance scenario from the robustness issue is pinned here:
//! a deliberately injected violation (a double token return through
//! the test backdoor) is caught within one cycle, produces a
//! parseable JSON forensic dump carrying a full snapshot and the
//! recent trace ring, and `HmcSim::restore()` of that snapshot
//! deterministically reproduces the violating cycle.

use hmcsim::cmc::ops;
use hmcsim::prelude::*;
use hmcsim::sim::sanitizer::ViolationKind;
use hmcsim::sim::{FaultPlan, LinkConfig, SanitizerReport};
use hmcsim::workloads::{
    MutexKernel, MutexKernelConfig, MutexMechanism, ResilienceConfig, SpinPolicy, ThreadDriver,
};

fn report(sim: &HmcSim) -> &SanitizerReport {
    sim.sanitizer_report().expect("sanitizer enabled")
}

/// A minimal structural JSON check: balanced braces/brackets outside
/// string literals, no trailing garbage. Enough to guarantee the dump
/// loads in any real JSON parser without hand-rolling one here.
fn assert_parseable_json(text: &str) {
    let mut depth: i64 = 0;
    let mut in_string = false;
    let mut escaped = false;
    let mut closed_at = None;
    for (i, c) in text.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced close at byte {i}");
                if depth == 0 {
                    closed_at = Some(i);
                }
            }
            _ => {}
        }
    }
    assert!(!in_string, "unterminated string literal");
    assert_eq!(depth, 0, "unbalanced braces");
    let end = closed_at.expect("a top-level value");
    assert!(
        text[end + 1..].trim().is_empty(),
        "trailing garbage after the top-level value"
    );
}

#[test]
fn injected_violation_dump_and_deterministic_replay() {
    let dump_dir = std::env::temp_dir().join(format!("hmcsim-forensics-{}", std::process::id()));
    let make_config = || {
        let mut cfg = DeviceConfig::gen2_4link_4gb();
        cfg.link_config = LinkConfig { tokens: Some(64), ..Default::default() };
        cfg
    };
    let sanitizer = {
        let mut c = SanitizerConfig::report();
        c.dump_dir = Some(dump_dir.clone());
        c
    };
    let mut sim = HmcSim::new(make_config()).unwrap();
    sim.enable_sanitizer(sanitizer.clone());

    // Real traffic first, so the trace ring has content and the
    // shadow accounting is exercised before the fault.
    for i in 0..4u64 {
        let tag = sim
            .send_simple(0, (i % 4) as usize, HmcRqst::Rd16, i * 0x100, vec![])
            .unwrap()
            .unwrap();
        let rsp = sim.run_until_response(0, (i % 4) as usize, tag, 100).unwrap();
        assert_eq!(rsp.rsp.head.cmd, HmcResponse::RdRs);
    }
    assert_eq!(report(&sim).total_violations, 0, "healthy run is clean");

    // The deliberate bug: a double token return at quiescence.
    let violating_cycle = sim.cycle();
    sim.debug_force_return_tokens(0, 0, 2);
    sim.clock();

    // Caught within one cycle.
    let rep = report(&sim);
    assert!(rep.total_violations >= 1, "violation detected the same cycle");
    assert!(
        rep.violations.iter().any(|v| v.kind == ViolationKind::TokenOverReturn),
        "over-return surfaced: {:?}",
        rep.violations
    );
    assert!(
        rep.violations.iter().all(|v| v.cycle == violating_cycle),
        "flagged at the violating cycle"
    );

    // The forensic dump: present in memory, written as parseable
    // JSON, and carrying snapshot + trace ring.
    let dump = sim.take_forensic_dump().expect("dump captured");
    assert_eq!(dump.cycle, violating_cycle);
    assert!(!dump.trace.is_empty(), "trace ring captured recent events");
    let json = dump.to_json();
    assert_parseable_json(&json);
    for needle in ["\"cycle\"", "\"violations\"", "\"snapshot\"", "\"trace\"", "token-over-return"]
    {
        assert!(json.contains(needle), "dump JSON is missing {needle}");
    }
    let path = dump_dir.join(format!("forensic-c{violating_cycle}.json"));
    let on_disk = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("dump file {} missing: {e}", path.display()));
    assert_eq!(on_disk, json, "on-disk dump matches the in-memory one");
    let _ = std::fs::remove_dir_all(&dump_dir);

    // Replay: restore the dump's snapshot into a brand-new context
    // and clock once — the same violation fires at the same cycle.
    let mut replayed = HmcSim::new(make_config()).unwrap();
    replayed.enable_sanitizer(SanitizerConfig::report());
    replayed.restore(&dump.snapshot).unwrap();
    assert_eq!(replayed.cycle(), violating_cycle);
    assert_eq!(
        replayed.state_fingerprint(),
        dump.snapshot.fingerprint(),
        "restore reproduces the snapshot state exactly"
    );
    replayed.clock();
    let rep = report(&replayed);
    assert!(
        rep.violations.iter().any(|v| {
            v.kind == ViolationKind::TokenOverReturn && v.cycle == violating_cycle
        }),
        "replay re-detects the violation at the violating cycle: {:?}",
        rep.violations
    );
}

#[test]
fn tag_reclamation_race_with_failover_and_reuse() {
    // A 1-tag pool makes reuse immediate, so any reclamation bug
    // (releasing while a stale response is in flight, or never
    // releasing after a zombie drop) is observable. Link 1 dies while
    // the response is in flight, forcing a failover delivery.
    let mut cfg = DeviceConfig::gen2_4link_4gb();
    cfg.fault = FaultPlan::seeded(3)
        .with_link_event(2, 1, false)
        .with_link_event(20, 1, true);
    let mut sim = HmcSim::new(cfg).unwrap();
    sim.enable_sanitizer(SanitizerConfig::report());
    sim.configure_tag_pool(0, 1, 1).unwrap();

    let tag = sim.send_simple(0, 1, HmcRqst::Rd16, 0x40, vec![]).unwrap().unwrap();
    sim.clock();
    // Host-side timeout: abandon while the response is still in
    // flight. The tag must NOT return to the pool yet (ABA hazard).
    sim.abandon_tag(0, 1, tag).unwrap();
    assert!(
        matches!(
            sim.send_simple(0, 1, HmcRqst::Rd16, 0x80, vec![]),
            Err(HmcError::TagsExhausted)
        ),
        "zombie tag is not reusable while its response is in flight"
    );

    // The stale response fails over (entry link 1 is down) and dies
    // as a zombie at delivery; the tag is reclaimed then.
    sim.drain(1_000);
    assert_eq!(sim.stats(0).unwrap().abandoned_responses, 1, "zombie dropped");
    while sim.cycle() < 21 {
        sim.clock();
    }
    assert!(sim.link_is_up(0, 1));
    let reused = sim.send_simple(0, 1, HmcRqst::Rd16, 0x80, vec![]).unwrap().unwrap();
    assert_eq!(reused, tag, "the 1-tag pool recycles the reclaimed tag");
    let rsp = sim.run_until_response(0, 1, reused, 100).unwrap();
    assert_eq!(rsp.rsp.head.cmd, HmcResponse::RdRs);

    let rep = report(&sim);
    assert_eq!(
        rep.total_violations, 0,
        "reclamation under failover is invariant-clean: {:?}",
        rep.violations
    );
    assert_eq!(rep.cycles_checked, sim.cycle());
}

#[test]
fn stall_watchdog_fires_when_nothing_moves() {
    // Kill every link while a response is in flight: it can neither
    // deliver nor fail over, so the fabric wedges with one resident
    // packet — exactly what the watchdog exists to catch.
    let mut cfg = DeviceConfig::gen2_4link_4gb();
    cfg.fault = FaultPlan::seeded(1)
        .with_link_event(1, 0, false)
        .with_link_event(1, 1, false)
        .with_link_event(1, 2, false)
        .with_link_event(1, 3, false);
    let mut sim = HmcSim::new(cfg).unwrap();
    let mut san = SanitizerConfig::report();
    san.watchdog_cycles = 50;
    sim.enable_sanitizer(san);

    sim.send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![]).unwrap().unwrap();
    sim.clock_n(200);

    let rep = report(&sim);
    let fired: Vec<_> = rep
        .violations
        .iter()
        .filter(|v| v.kind == ViolationKind::StallWatchdog)
        .collect();
    assert!(!fired.is_empty(), "watchdog fired: {:?}", rep.violations);
    assert!(
        fired[0].cycle >= 50 && fired[0].cycle <= 60,
        "first firing ~50 stalled cycles in, got cycle {}",
        fired[0].cycle
    );
    assert!(fired.len() >= 2, "watchdog re-arms instead of firing once");
    assert!(sim.forensic_dump().is_some(), "stall captured a forensic dump");
}

#[test]
fn phantom_response_detected_and_recoverable() {
    // Report mode: the phantom is flagged but still delivered.
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    sim.enable_sanitizer(SanitizerConfig::report());
    let rsp = Response::new(
        HmcResponse::RdRs,
        Tag::new(9).unwrap(),
        Slid::new(0).unwrap(),
        Cub::new(0).unwrap(),
        vec![0, 0],
    )
    .unwrap();
    sim.debug_inject_phantom_response(0, 0, rsp.clone());
    sim.clock_n(4);
    assert!(
        report(&sim).violations.iter().any(|v| v.kind == ViolationKind::PhantomResponse),
        "phantom flagged: {:?}",
        report(&sim).violations
    );
    assert!(sim.recv(0, 0).is_some(), "report mode only observes");

    // Recover mode: the phantom is dropped before the host sees it.
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    sim.enable_sanitizer(SanitizerConfig::recovering());
    sim.debug_inject_phantom_response(0, 0, rsp);
    sim.clock_n(4);
    let rep = report(&sim);
    assert!(rep.recovered >= 1, "phantom recovered");
    assert!(sim.recv(0, 0).is_none(), "recover mode drops the phantom");
}

#[test]
fn recover_policy_repairs_token_pools() {
    let mut cfg = DeviceConfig::gen2_4link_4gb();
    cfg.link_config = LinkConfig { tokens: Some(8), ..Default::default() };
    let mut sim = HmcSim::new(cfg).unwrap();
    sim.enable_sanitizer(SanitizerConfig::recovering());

    sim.debug_force_return_tokens(0, 0, 4);
    sim.clock();
    let after_fault = report(&sim).total_violations;
    assert!(after_fault >= 1, "over-return detected");
    assert!(report(&sim).recovered >= 1, "and repaired");

    // The repaired pool checks clean from here on, and traffic flows.
    sim.clock_n(10);
    assert_eq!(report(&sim).total_violations, after_fault, "no re-fire after repair");
    let tag = sim.send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![]).unwrap().unwrap();
    let rsp = sim.run_until_response(0, 0, tag, 100).unwrap();
    assert_eq!(rsp.rsp.head.cmd, HmcResponse::RdRs);
}

#[test]
fn snapshot_restore_is_deterministic_mid_flight() {
    let make = || {
        let mut cfg = DeviceConfig::gen2_4link_4gb();
        cfg.fault = FaultPlan::seeded(7).with_vault_errors(30_000).with_poison(10_000);
        let mut sim = HmcSim::new(cfg).unwrap();
        sim.enable_sanitizer(SanitizerConfig::report());
        sim
    };
    let mut original = make();
    for i in 0..16u64 {
        original
            .send_simple(0, (i % 4) as usize, HmcRqst::Wr32, i * 0x400, vec![0; 4])
            .unwrap();
    }
    original.clock_n(2);
    let snap = original.snapshot();
    assert!(snap.packets_in_fabric() > 0, "snapshot taken mid-flight");

    let mut restored = make();
    restored.restore(&snap).unwrap();
    assert_eq!(restored.state_fingerprint(), original.state_fingerprint());

    original.drain(10_000);
    restored.drain(10_000);
    assert_eq!(
        restored.state_fingerprint(),
        original.state_fingerprint(),
        "restored run evolves bit-identically (same faults, same cycles)"
    );
    assert_eq!(report(&original).total_violations, 0);
    assert_eq!(report(&restored).total_violations, 0);
}

#[test]
fn restore_rejects_mismatched_geometry() {
    let sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    let snap = sim.snapshot();
    let mut other = HmcSim::new(DeviceConfig::gen2_8link_8gb()).unwrap();
    assert!(other.restore(&snap).is_err(), "8-link device rejects a 4-link snapshot");
}

#[test]
fn periodic_checkpoints_bound_the_replay_window() {
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    let mut san = SanitizerConfig::report();
    san.checkpoint_every = 16;
    sim.enable_sanitizer(san);
    for i in 0..8u64 {
        let tag = sim
            .send_simple(0, (i % 4) as usize, HmcRqst::Rd16, i * 0x100, vec![])
            .unwrap()
            .unwrap();
        sim.run_until_response(0, (i % 4) as usize, tag, 100).unwrap();
    }
    sim.clock_n(40);
    let rep = report(&sim);
    assert!(rep.checkpoints_taken >= 2, "checkpoints at the configured cadence");
    let ckpt = sim.sanitizer_checkpoint().expect("latest checkpoint retained").clone();
    assert!(ckpt.cycle().is_multiple_of(16));

    // A checkpoint is restorable like any snapshot.
    let mut resumed = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    resumed.enable_sanitizer(SanitizerConfig::report());
    resumed.restore(&ckpt).unwrap();
    assert_eq!(resumed.cycle(), ckpt.cycle());
    resumed.clock_n(8);
    assert_eq!(report(&resumed).total_violations, 0);
}

/// The CI chaos gate: an aggressive seeded fault plan (vault errors,
/// poison, wire corruption, a link outage) under the *panicking*
/// sanitizer with dumps pointed at `target/forensics`. If any
/// invariant breaks, this test panics and CI uploads the dump
/// artifacts for offline replay.
#[test]
fn chaos_run_survives_the_panicking_sanitizer() {
    ops::register_builtin_libraries();
    let mut config = DeviceConfig::gen2_4link_4gb();
    config.fault = FaultPlan::seeded(99)
        .with_vault_errors(40_000)
        .with_poison(20_000)
        .with_link_errors(hmcsim::sim::LinkErrorMode::Random { per_million: 5_000 })
        .with_link_event(200, 1, false)
        .with_link_event(600, 1, true);
    let mut sim = HmcSim::new(config).unwrap();
    let mut san = SanitizerConfig::panicking();
    san.dump_dir = Some(std::path::PathBuf::from("target/forensics"));
    san.watchdog_cycles = 100_000;
    sim.enable_sanitizer(san);
    sim.load_cmc_library(0, ops::MUTEX_LIBRARY).unwrap();

    let kernel = MutexKernel::new(MutexKernelConfig {
        threads: 16,
        spin: SpinPolicy::until_owned(),
        mechanism: MutexMechanism::Cmc,
        ..Default::default()
    });
    let driver = ThreadDriver {
        dev: 0,
        max_cycles: 500_000,
        resilience: Some(ResilienceConfig {
            request_timeout: 3_000,
            max_retries: 8,
            backoff_base: 8,
        }),
    };
    let result = kernel.run_with_driver(&mut sim, &driver).unwrap();
    assert_eq!(result.acquisitions, 16, "liveness under chaos");
    let rep = sim.disable_sanitizer().unwrap();
    assert_eq!(rep.total_violations, 0);
    assert!(rep.cycles_checked > 0);
}
