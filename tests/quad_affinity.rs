//! Quad-affinity modeling: requests that cross from a link's local
//! quad into a remote quad pay the configured crossing penalty.

use hmcsim::prelude::*;

/// Address of a block in the given vault (block-interleaved map:
/// vault = addr[10:6] with 64-byte blocks).
fn vault_addr(vault: u64) -> u64 {
    vault * 64
}

fn sim_with_penalty(penalty: u64) -> HmcSim {
    let mut cfg = DeviceConfig::gen2_4link_4gb();
    cfg.remote_quad_penalty = penalty;
    HmcSim::new(cfg).unwrap()
}

fn read_latency(sim: &mut HmcSim, link: usize, addr: u64) -> u64 {
    let tag = sim.send_simple(0, link, HmcRqst::Rd16, addr, vec![]).unwrap().unwrap();
    sim.run_until_response(0, link, tag, 1000).unwrap().latency
}

#[test]
fn default_model_is_uniform() {
    let mut sim = sim_with_penalty(0);
    // Link 0's local quad is 0 (vaults 0..8); vault 31 is quad 3.
    assert_eq!(read_latency(&mut sim, 0, vault_addr(0)), 3);
    assert_eq!(read_latency(&mut sim, 0, vault_addr(31)), 3);
    assert_eq!(sim.stats(0).unwrap().remote_quad_requests, 0);
}

#[test]
fn remote_quad_pays_the_penalty() {
    let mut sim = sim_with_penalty(2);
    let local = read_latency(&mut sim, 0, vault_addr(0));
    let remote = read_latency(&mut sim, 0, vault_addr(31));
    assert_eq!(local, 3, "local quad unchanged");
    assert_eq!(remote, 5, "remote quad adds the crossing penalty");
    assert_eq!(sim.stats(0).unwrap().remote_quad_requests, 1);
}

#[test]
fn every_link_has_its_own_local_quad() {
    let mut sim = sim_with_penalty(2);
    for link in 0..4usize {
        // Vault 8*link is the first vault of link's local quad.
        let local_vault = (8 * link) as u64;
        assert_eq!(
            read_latency(&mut sim, link, vault_addr(local_vault)),
            3,
            "link {link} local quad"
        );
        let remote_vault = (8 * ((link + 1) % 4)) as u64;
        assert_eq!(
            read_latency(&mut sim, link, vault_addr(remote_vault)),
            5,
            "link {link} remote quad"
        );
    }
}

#[test]
fn penalty_shifts_mutex_hot_spot_results() {
    use hmcsim::workloads::{MutexKernel, MutexKernelConfig};
    hmcsim::cmc::ops::register_builtin_libraries();
    let run = |penalty: u64| {
        let mut cfg = DeviceConfig::gen2_4link_4gb();
        cfg.remote_quad_penalty = penalty;
        let mut sim = HmcSim::new(cfg).unwrap();
        sim.load_cmc_library(0, hmcsim::cmc::ops::MUTEX_LIBRARY).unwrap();
        MutexKernel::new(MutexKernelConfig { threads: 16, ..Default::default() })
            .run(&mut sim)
            .unwrap()
            .metrics
    };
    let uniform = run(0);
    let affine = run(4);
    // The lock lives in one quad; with a penalty, 3 of 4 links pay
    // extra on every operation, so the sweep slows down.
    assert!(affine.max_cycle() > uniform.max_cycle());
    assert!(affine.avg_cycle() > uniform.avg_cycle());
}
