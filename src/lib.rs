//! # hmcsim
//!
//! A Rust reproduction of **HMC-Sim 2.0** — a cycle-based simulator for
//! Hybrid Memory Cube (HMC) Gen2 devices with support for user-defined
//! **Custom Memory Cube (CMC)** operations (Leidel & Chen, 2016).
//!
//! This umbrella crate re-exports the workspace crates:
//!
//! * [`types`] — FLITs, commands, packets, CRC, tags, errors
//! * [`mem`] — backing store and atomic-memory-operation semantics
//! * [`sim`] — the device model (links, crossbar, vaults, banks, clock,
//!   tracing, registers, power)
//! * [`cmc`] — the CMC plugin framework and the builtin operation suite
//!   (including the paper's `hmc_lock` / `hmc_trylock` / `hmc_unlock`)
//! * [`workloads`] — simulated-thread drivers and kernels (mutex
//!   Algorithm 1, STREAM Triad, RandomAccess/GUPS, BFS)
//! * [`cachesim`] — the cache-based read-modify-write traffic baseline
//!   used for the paper's Table II comparison
//!
//! ## Quickstart
//!
//! ```
//! use hmcsim::prelude::*;
//!
//! // A 4-link, 4 GiB Gen2 device, as in the paper's evaluation.
//! let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
//!
//! // Load the CMC mutex library (paper Table V).
//! hmcsim::cmc::ops::register_builtin_libraries();
//! sim.load_cmc_library(0, "libhmc_mutex.so").unwrap();
//!
//! // Issue a write and clock the device until the response returns.
//! let payload: Vec<u64> = vec![0xdead_beef, 0x0123_4567];
//! let tag = sim
//!     .send_simple(0, 0, HmcRqst::Wr16, 0x1000, payload)
//!     .unwrap()
//!     .expect("WR16 is acknowledged");
//! let rsp = sim.run_until_response(0, 0, tag, 1000).unwrap();
//! assert_eq!(rsp.rsp.head.cmd, HmcResponse::WrRs);
//! ```

pub use hmc_cachesim as cachesim;
pub use hmc_cmc as cmc;
pub use hmc_mem as mem;
pub use hmc_sim as sim;
pub use hmc_types as types;
pub use hmc_workloads as workloads;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use hmc_cmc::{CmcContext, CmcOp, CmcRegistration};
    pub use hmc_sim::{
        DeviceConfig, ExecMode, HmcSim, LinkTopology, SanitizerConfig, SanitizerPolicy,
        SkipMode, TelemetryConfig, TimingSelect, TraceLevel,
    };
    pub use hmc_types::{
        Cub, Flit, HmcError, HmcResponse, HmcRqst, Request, Response, Slid, Tag,
    };
}
