#!/usr/bin/env bash
# Kill/resume matrix for the durable replay path.
#
# For each kill point, runs the replay CLI with --checkpoint-dir, hard-kills
# it (SIGKILL — no cleanup handlers run, exactly like an OOM kill), resumes
# with --resume, and demands the printed final state fingerprint is
# bit-identical to an uninterrupted reference run. Also corrupts the newest
# checkpoint once and demands recovery falls back loudly instead of using it.
#
# Usage: scripts/crash_recovery_matrix.sh [REPLAY_BIN]
set -u

REPLAY=${1:-target/release/replay}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/hmc-crash-matrix.XXXXXX")
trap 'rm -rf "$WORK"' EXIT
FAILS=0

fingerprint_of() { grep -o 'final state fingerprint: 0x[0-9a-f]*' "$1" | tail -1; }

say()  { printf '%s\n' "$*"; }
fail() { say "FAIL: $*"; FAILS=$((FAILS + 1)); }

# A deterministic trace big enough that checkpointing dominates the
# wall clock, so the SIGKILLs below genuinely land mid-run.
TRACE="$WORK/trace.txt"
awk 'BEGIN {
  for (i = 0; i < 40000; i++)
    printf "%s 0x%x 64 %d\n", (i % 2 ? "R" : "W"), 1048576 + (i * 64) % 2097152, i % 8
}' > "$TRACE"

# Reference: uninterrupted run.
"$REPLAY" "$TRACE" --checkpoint-every 100 > "$WORK/ref.log" 2>&1
REF=$(fingerprint_of "$WORK/ref.log")
[ -n "$REF" ] || { say "FATAL: reference run printed no fingerprint"; exit 1; }
say "reference $REF"

# Kill matrix: SIGKILL at several points into the run.
for KILL_AFTER in 0.05 0.15 0.30; do
  DIR="$WORK/ckpt-$KILL_AFTER"
  timeout -s KILL "$KILL_AFTER" \
    "$REPLAY" "$TRACE" --checkpoint-dir "$DIR" --checkpoint-every 100 \
    > "$WORK/killed-$KILL_AFTER.log" 2>&1
  STATUS=$?
  if [ "$STATUS" -ne 124 ] && [ "$STATUS" -ne 137 ]; then
    # The run finished before the kill fired; still a valid resume test.
    say "note: kill at ${KILL_AFTER}s landed after completion (status $STATUS)"
  fi
  "$REPLAY" "$TRACE" --checkpoint-dir "$DIR" --checkpoint-every 100 --resume \
    > "$WORK/resumed-$KILL_AFTER.log" 2>&1 \
    || { fail "resume after ${KILL_AFTER}s kill exited nonzero"; continue; }
  GOT=$(fingerprint_of "$WORK/resumed-$KILL_AFTER.log")
  if [ "$GOT" = "$REF" ]; then
    say "kill@${KILL_AFTER}s: resumed run is bit-identical ($GOT)"
  else
    fail "kill@${KILL_AFTER}s: resumed fingerprint '$GOT' != reference '$REF'"
  fi
done

# Corruption: tear the newest checkpoint; recovery must quarantine it,
# fall back, and still converge to the reference fingerprint.
DIR="$WORK/ckpt-corrupt"
"$REPLAY" "$TRACE" --checkpoint-dir "$DIR" --checkpoint-every 100 > /dev/null 2>&1
NEWEST=$(ls "$DIR"/ckpt-*.json | sort -t- -k2 -n | tail -1)
SIZE=$(wc -c < "$NEWEST")
head -c $((SIZE / 2)) "$NEWEST" > "$NEWEST.torn" && mv "$NEWEST.torn" "$NEWEST"
"$REPLAY" "$TRACE" --checkpoint-dir "$DIR" --checkpoint-every 100 --resume \
  > "$WORK/corrupt.log" 2>&1
if ! grep -q "QUARANTINED" "$WORK/corrupt.log"; then
  fail "torn checkpoint was not loudly quarantined"
fi
ls "$DIR"/*.corrupt > /dev/null 2>&1 || fail "no .corrupt evidence file kept"
GOT=$(fingerprint_of "$WORK/corrupt.log")
if [ "$GOT" = "$REF" ]; then
  say "corruption: fell back to prior generation, still bit-identical ($GOT)"
else
  fail "corruption fallback fingerprint '$GOT' != reference '$REF'"
fi

# Preserve quarantined evidence for CI artifact upload.
mkdir -p target/crash-recovery
cp "$DIR"/*.corrupt target/crash-recovery/ 2>/dev/null || true
cp "$WORK"/*.log target/crash-recovery/ 2>/dev/null || true

if [ "$FAILS" -eq 0 ]; then
  say "crash-recovery matrix: all checks passed"
else
  say "crash-recovery matrix: $FAILS check(s) FAILED"
  exit 1
fi
