//! Offline drop-in subset of the `rand` 0.8 API, vendored so the
//! workspace builds without registry access (see `vendor/README.md`).
//!
//! [`rngs::StdRng`] is a deterministic xorshift64\* generator seeded
//! via SplitMix64 — not the upstream ChaCha12 stream, but the
//! workspace only relies on *determinism per seed*, never on the
//! exact upstream value sequence.

use std::ops::{Range, RangeInclusive};

/// Core trait for random-number generators: a 64-bit word source.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, the subset of `rand::Rng` the workspace uses.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`low..high` or `low..=high`).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Deterministic generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xorshift64\* generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 scramble so nearby seeds diverge immediately.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            StdRng { state: z | 1 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

/// Sequence helpers (`rand::seq` subset).
pub mod seq {
    use super::RngCore;

    /// In-place shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffles the slice with `rng`.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let sa: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements should not shuffle to identity");
    }
}
