//! Offline drop-in subset of the `criterion` API, vendored so the
//! workspace builds without registry access (see `vendor/README.md`).
//!
//! Benches compile and run under `cargo bench` with a simple
//! calibrated wall-clock measurement and a plain-text report — no
//! statistical analysis, plots or baselines. Timings are comparable
//! run-to-run on one machine, nothing more.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement driver handed to each bench target function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<S, F>(&mut self, name: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Units processed per iteration, for derived rates in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target wall-clock time spent measuring each bench.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Sets the number of samples taken per bench.
    pub fn sample_size(&mut self, size: usize) -> &mut Self {
        self.sample_size = size.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures `f` and prints one report line.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::calibrated(self.sample_size, self.measurement_time);
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Measures `f` against `input` and prints one report line.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        let mut bencher = Bencher::calibrated(self.sample_size, self.measurement_time);
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Ends the group (upstream parity; all reporting is immediate).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let mean = bencher.mean_ns();
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  {:>10.1} MiB/s", n as f64 / mean * 1e9 / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:>10.1} Melem/s", n as f64 / mean * 1e3)
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<32} {:>14} ns/iter ({} samples){}",
            self.name,
            id.id,
            format_ns(mean),
            bencher.samples.len(),
            rate
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else {
        format!("{:.1}", ns)
    }
}

/// Runs the measured closure and records per-iteration timings.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    fn calibrated(sample_size: usize, measurement_time: Duration) -> Self {
        Bencher { sample_size, measurement_time, samples: Vec::new() }
    }

    /// Times `routine`, storing mean ns/iteration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in one sample's share of
        // the measurement budget?
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.measurement_time.as_nanos() as f64
            / self.sample_size as f64;
        let iters = (per_sample / once.as_nanos() as f64).clamp(1.0, 1e6) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / iters as f64);
        }
    }

    fn mean_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }
}

/// Re-export of `std::hint::black_box` for upstream parity.
pub use std::hint::black_box;

/// Declares a bench group function invoking each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_reports_without_panicking() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3).measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Bytes(64));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}
