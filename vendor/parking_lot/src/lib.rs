//! Offline drop-in subset of the `parking_lot` API, backed by
//! `std::sync`. Vendored so the workspace builds without registry
//! access; see `vendor/README.md` for the rationale and the API
//! contract. Poisoning is transparently ignored (parking_lot locks
//! are not poisoning).

use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with the parking_lot calling convention:
/// `read()`/`write()` return guards directly rather than `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked `RwLock`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A mutual-exclusion lock with the parking_lot calling convention.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked `Mutex`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
