//! Offline drop-in subset of the `proptest` API, vendored so the
//! workspace builds without registry access (see `vendor/README.md`).
//!
//! Semantics: each `proptest!` test runs `ProptestConfig::cases`
//! deterministic cases drawn from a per-test RNG seeded by the test's
//! module path, so failures reproduce exactly across runs. Unlike
//! upstream proptest there is **no shrinking** — a failing case
//! reports the case index and message and panics immediately.

pub mod test_runner;

pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Strategy combinators: ranges, tuples, map, union.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    ///
    /// The vendored strategy is just a deterministic sampler; all the
    /// upstream combinators the workspace uses (`prop_map`, tuples,
    /// ranges, `prop_oneof!`) are supported, shrinking is not.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, map: f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.sample(rng)))
        }
    }

    /// A strategy that always produces a clone of the same value
    /// (upstream `proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.map)(self.source.sample(rng))
        }
    }

    /// Output of [`Strategy::boxed`]: a type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over the given arms (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one uniformly-distributed value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// `prop::collection` subset.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// `prop::sample` subset.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].clone()
        }
    }

    /// Chooses uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }
}

/// Namespaced re-exports matching upstream's `prop::` paths.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares deterministic property tests. Each `fn` becomes a
/// `#[test]` that samples its `pat in strategy` bindings
/// `config.cases` times and panics on the first `Err` the body
/// returns (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (not panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} ({:?} vs {:?})", format!($($fmt)+), l, r
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both {:?})",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{} (both {:?})", format!($($fmt)+), l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Op {
        Inc(u8),
        Put(u8, u64),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            any::<u8>().prop_map(Op::Inc),
            (any::<u8>(), any::<u64>()).prop_map(|(s, v)| Op::Put(s, v)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 1u8..=4, z in 0usize..2) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!(z < 2);
        }

        #[test]
        fn vec_and_select(
            v in prop::collection::vec(any::<bool>(), 1..9),
            pick in prop::sample::select(vec![2usize, 4, 8]),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(pick == 2 || pick == 4 || pick == 8);
        }

        #[test]
        fn oneof_and_map(op in arb_op(), w in any::<u128>()) {
            match op {
                Op::Inc(_) | Op::Put(..) => {}
            }
            prop_assert_eq!(w, w);
            prop_assert_ne!(w.wrapping_add(1), w, "w = {}", w);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x::y");
        let mut b = crate::TestRng::from_name("x::y");
        let mut c = crate::TestRng::from_name("x::z");
        let sa: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn failing_case_reports_via_result() {
        let run = || -> Result<(), TestCaseError> {
            prop_assert_eq!(1 + 1, 3, "math broke");
            Ok(())
        };
        let err = run().unwrap_err();
        assert!(format!("{err}").contains("math broke"));
    }
}
