//! Test-runner types: config, case errors and the deterministic RNG.

use std::fmt;

/// Per-test configuration (`cases` is the only knob the workspace
/// uses; upstream's other fields are intentionally absent).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property test samples.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single test case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The case was rejected (kept for API parity; the vendored
    /// runner treats rejection like failure).
    Reject(String),
}

impl TestCaseError {
    /// A failed case with the given reason.
    pub fn fail<S: Into<String>>(reason: S) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected case with the given reason.
    pub fn reject<S: Into<String>>(reason: S) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic xorshift64\* RNG seeded from the test's name, so a
/// failing case index identifies the exact inputs across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name via FNV-1a.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h | 1 }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}
